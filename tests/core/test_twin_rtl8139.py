"""Generality: twinning a structurally different driver (RTL8139).

The paper's pipeline is semi-automatic and driver-agnostic; this file
re-runs the core TwinDrivers properties against the copying, fixed-slot
RTL8139 driver, including the string-heavy hot path (``rep movsb`` under
SVM page-chunking) and the driver-specific fast-path support set.
"""

import pytest

from repro.core import DriverAborted, ParavirtNetDevice, TwinDriverManager
from repro.drivers import RTL8139_SPEC
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xbb\x00\x01"

#: the RTL8139's error-free tx/rx support set: no per-packet DMA maps
#: (its buffers are persistently mapped at probe time).
RTL_FAST_PATH = {
    "netdev_alloc_skb",
    "dev_kfree_skb_any",
    "netif_rx",
    "eth_type_trans",
    "spin_trylock",
    "spin_unlock_irqrestore",
}


@pytest.fixture
def env():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, driver=RTL8139_SPEC)
    nic = m.add_nic(model="rtl8139")
    twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    return m, xen, twin, dev, nic


class TestTwinnedRtl8139:
    def test_string_ops_rewritten(self, env):
        m, xen, twin, dev, nic = env
        assert twin.rewrite_stats.string_rewritten >= 2   # tx + rx copies

    def test_tx_payload_integrity(self, env):
        m, xen, twin, dev, nic = env
        m.wire.keep_payloads = True
        payload = bytes(range(251)) * 5
        assert dev.transmit(len(payload), payload=payload)
        frame = m.wire.transmitted[0]
        assert frame[6:12] == GUEST_MAC
        assert frame[14:] == payload

    def test_non_sg_twin_path_linearizes(self, env):
        # the twin manager copies the whole frame into the skb (no frags)
        m, xen, twin, dev, nic = env
        assert not twin.driver_spec.scatter_gather
        assert dev.transmit(1400)
        assert m.wire.tx_count == 1

    def test_no_domain_switch_on_tx(self, env):
        m, xen, twin, dev, nic = env
        dev.transmit(900)
        before = xen.switches
        for _ in range(10):
            assert dev.transmit(900)
        assert xen.switches == before

    def test_rx_through_ring_and_demux(self, env):
        m, xen, twin, dev, nic = env
        dev.keep_rx_payloads = True
        payload = b"ring-payload" * 50
        frame = GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + payload
        for _ in range(8):
            assert m.wire.inject(nic, frame)
        assert dev.rx_packets == 8
        assert dev.rx_payloads[0] == payload

    def test_sustained_traffic_wraps_ring(self, env):
        m, xen, twin, dev, nic = env
        frame = GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + bytes(1400)
        for _ in range(40):
            assert m.wire.inject(nic, frame)
        assert dev.rx_packets == 40

    def test_fast_path_set_is_driver_specific(self, env):
        m, xen, twin, dev, nic = env
        # steady state, then trace
        for _ in range(16):
            dev.transmit(1000)
        frame = GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + bytes(1000)
        for _ in range(16):
            m.wire.inject(nic, frame)
        before = dict(twin.hyp_support.calls)
        for _ in range(16):
            dev.transmit(1000)
            m.wire.inject(nic, frame)
        called = {name for name, count in twin.hyp_support.calls.items()
                  if count > before.get(name, 0)}
        assert called == RTL_FAST_PATH
        assert twin.upcalls.upcalls == 0

    def test_stats_via_vm_instance(self, env):
        m, xen, twin, dev, nic = env
        for _ in range(3):
            dev.transmit(600)
        twin.vm_call("rtl8139_get_stats", [dev.netdev_addr])
        from repro.osmodel.netdev import NetDevice
        ndev = NetDevice(twin.dom0_kernel.domain.aspace, dev.netdev_addr)
        assert ndev.tx_packets == 3

    def test_safety_holds_for_second_driver(self):
        from repro.drivers.rtl8139 import RTL8139_ASM, RTL_CONSTANTS
        from repro.isa import assemble
        bad = RTL8139_ASM.replace(
            "    incl rtl_probe_count",
            "    incl rtl_probe_count", 1)
        bad = RTL8139_ASM.replace(
            "rtl8139_xmit:\n    pushl %ebp",
            "rtl8139_xmit:\n"
            "    movl $0xF0300040, %eax\n"
            "    movl $0x41414141, (%eax)\n"
            "    pushl %ebp", 1)
        program = assemble(bad, constants=RTL_CONSTANTS, name="rtl-bad")
        m = Machine()
        xen = Hypervisor(m)
        dom0 = xen.create_domain("dom0", is_dom0=True)
        k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
        guest = xen.create_domain("guest")
        kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
        twin = TwinDriverManager(xen, k0, driver=RTL8139_SPEC,
                                 program=program, recovery=False)
        twin.attach_nic(m.add_nic(model="rtl8139"))
        dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
        xen.switch_to(guest)
        with pytest.raises(DriverAborted):
            dev.transmit(500)
        assert twin.aborted
        # the hypervisor and the VM instance survive
        assert twin.vm_call("rtl8139_get_stats",
                            [dev.netdev_addr]) != 0

    def test_rewrite_equivalence_vm_instance(self, env):
        # the VM instance (identity stlb) runs the same rewritten binary
        # in dom0: probe already ran through it; run management ops too
        m, xen, twin, dev, nic = env
        assert twin.identity_svm.misses > 0
        assert twin.vm_call("rtl8139_get_stats", [dev.netdev_addr]) != 0
