"""Hypervisor loader details and the upcall mechanism in isolation."""

import pytest

from repro.core import DriverAborted, ParavirtNetDevice, TwinDriverManager, \
    UpcallManager
from repro.core.svm import SvmProtectionFault
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import HYP_STACK_BASE, Hypervisor


def make_twin():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0)
    nic = m.add_nic()
    twin.attach_nic(nic)
    return m, xen, k0, twin, nic


class TestLoader:
    def test_fast_path_bound_to_hypervisor_natives(self):
        m, xen, k0, twin, nic = make_twin()
        hyp = twin.hyp_driver.loaded
        # direct calls to dma_map_single resolve to the hyp.* native
        hyp_native = twin.hyp_support.addresses["dma_map_single"]
        program = hyp.program
        for i, ins in enumerate(program.instructions):
            if (ins.is_call and not ins.indirect
                    and i in hyp.targets
                    and hyp.targets[i] == hyp_native):
                return
        pytest.fail("no call bound to the hypervisor dma_map_single")

    def test_config_routines_bound_to_upcall_stubs(self):
        m, xen, k0, twin, nic = make_twin()
        hyp = twin.hyp_driver.loaded
        stub_addrs = {
            addr for name, addr in m.natives.by_name.items()
            if name.startswith("upcall.")
        }
        bound = set(hyp.targets.values())
        assert stub_addrs & bound      # e.g. kmalloc, register_netdev, ...

    def test_one_stub_per_unimplemented_routine(self):
        m, xen, k0, twin, nic = make_twin()
        stub_names = {name.split(".", 1)[1]
                      for name in m.natives.by_name
                      if name.startswith("upcall.")}
        expected = (set(twin.rewritten.imports())
                    - set(twin.hyp_support.addresses)
                    - {"__svm_slow_path", "__svm_translate",
                       "__stlb_call_xlate"})
        assert stub_names == expected

    def test_code_translation_of_native_pointers(self):
        # a dom0 support-routine address stored in shared data translates
        # to the hypervisor binding
        m, xen, k0, twin, nic = make_twin()
        dom0_addr = twin.vm_module.import_map["netif_rx"]
        hyp_addr = twin.hyp_support.addresses["netif_rx"]
        assert twin.hyp_runtime.translate_code(dom0_addr) == hyp_addr

    def test_code_translation_of_vm_code(self):
        m, xen, k0, twin, nic = make_twin()
        vm_addr = twin.vm_module.symbol("e1000_clean_rx")
        assert twin.hyp_runtime.translate_code(vm_addr) == \
            vm_addr + twin.hyp_driver.code_offset

    def test_code_translation_rejects_foreign(self):
        m, xen, k0, twin, nic = make_twin()
        with pytest.raises(SvmProtectionFault):
            twin.hyp_runtime.translate_code(0x12345678)

    def test_xlate_cache_hits(self):
        m, xen, k0, twin, nic = make_twin()
        guest = xen.create_domain("guest")
        kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
        dev = ParavirtNetDevice(twin, kg, mac=b"\x00\x16\x3e\x00\x00\x09")
        xen.switch_to(guest)
        for _ in range(6):
            dev.transmit(500)
        rt = twin.hyp_runtime
        assert rt.call_xlate_misses >= 1
        assert rt.call_xlate_hits > rt.call_xlate_misses

    def test_stack_guard_page(self):
        # the page below the hypervisor stack is unmapped
        m, xen, k0, twin, nic = make_twin()
        assert m.hypervisor_table.lookup((HYP_STACK_BASE - 0x1000) >> 12) \
            is None

    def test_identity_xlate_for_vm_instance(self):
        m, xen, k0, twin, nic = make_twin()
        vm_addr = twin.vm_module.symbol("e1000_clean_tx")
        assert twin._identity_translate_code(vm_addr) == vm_addr
        with pytest.raises(SvmProtectionFault):
            twin._identity_translate_code(0x00001000)


class TestUpcallManager:
    def make_env(self):
        m = Machine()
        xen = Hypervisor(m)
        dom0 = xen.create_domain("dom0", is_dom0=True)
        k0 = Kernel(m, dom0, costs=xen.costs)
        guest = xen.create_domain("guest")
        Kernel(m, guest, costs=xen.costs)
        xen.switch_to(guest)
        # Upcalls happen while the driver runs on the *hypervisor* stack,
        # which is visible from every domain — that is what lets dom0 read
        # the call parameters (paper §4.2). A per-domain stack would alias.
        for i in range(2):
            m.hypervisor_table.map((HYP_STACK_BASE >> 12) + i,
                                   m.phys.allocate_frame())
        self.stack_top = HYP_STACK_BASE + 2 * 0x1000
        return m, xen, k0, guest

    def test_stub_invokes_dom0_routine_with_same_args(self):
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        seen = []

        def dom0_routine(cpu):
            seen.append((cpu.read_stack_arg(0), cpu.read_stack_arg(1)))
            return 99

        addr = m.register_native("dom0.fake_routine", dom0_routine)
        stub = upcalls.make_stub("fake_routine", addr)
        result = m.cpu.call_function(stub, [11, 22],
                                     stack_top=self.stack_top)
        assert result == 99
        assert seen == [(11, 22)]
        assert upcalls.upcalls == 1

    def test_dom0_context_during_upcall(self):
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        contexts = []

        def dom0_routine(cpu):
            contexts.append(xen.current.name)
            return 0

        addr = m.register_native("dom0.ctx_probe", dom0_routine)
        stub = upcalls.make_stub("ctx_probe", addr)
        m.cpu.call_function(stub, [], stack_top=self.stack_top)
        assert contexts == ["dom0"]
        assert xen.current is guest

    def test_first_upcall_extra_once_per_invocation(self):
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        addr = m.register_native("dom0.nop_routine", lambda cpu: 0)
        stub = upcalls.make_stub("nop_routine", addr)

        def one_invocation(n_calls):
            upcalls.new_invocation()
            snap = m.account.snapshot()
            for _ in range(n_calls):
                m.cpu.call_function(stub, [],
                                    stack_top=self.stack_top)
            return sum(m.account.delta_since(snap).values())

        two = one_invocation(2)
        one = one_invocation(1)
        assert two < 2 * one            # the extra is paid once

    def test_nested_upcalls_do_not_clobber(self):
        # a dom0 routine that itself triggers an upcall must not clobber
        # the outer call's saved environment (the old single-slot
        # _pending/_result did exactly that)
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        inner_addr = m.register_native("dom0.inner", lambda cpu: 7)
        inner_stub = upcalls.make_stub("inner", inner_addr)

        def outer(cpu):
            assert m.cpu.call_function(inner_stub, [],
                                       stack_top=self.stack_top) == 7
            return 42

        outer_addr = m.register_native("dom0.outer", outer)
        outer_stub = upcalls.make_stub("outer", outer_addr)
        assert m.cpu.call_function(outer_stub, [],
                                   stack_top=self.stack_top) == 42
        assert upcalls.in_flight == 0

    def test_masked_virq_aborts_upcall(self):
        from repro.core import UpcallAborted
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        addr = m.register_native("dom0.never", lambda cpu: 1)
        stub = upcalls.make_stub("never", addr)
        k0.domain.disable_virq()
        with pytest.raises(UpcallAborted):
            m.cpu.call_function(stub, [], stack_top=self.stack_top)
        # the frame was popped on the way out: nothing left in flight
        assert upcalls.in_flight == 0

    def test_abort_unwind_clears_frames(self):
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        unwound = []

        def dom0_routine(cpu):
            # simulate recovery tearing the stack down mid-upcall
            unwound.append(upcalls.abort_unwind())
            return 5

        addr = m.register_native("dom0.teardown", dom0_routine)
        stub = upcalls.make_stub("teardown", addr)
        m.cpu.call_function(stub, [], stack_top=self.stack_top)
        assert unwound == [1]
        assert upcalls.in_flight == 0

    def test_stub_cached_per_name(self):
        # a driver reload re-binds the same stub natives (no leak)
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        addr = m.register_native("dom0.once", lambda cpu: 0)
        assert upcalls.make_stub("once", addr) == \
            upcalls.make_stub("once", addr)

    def test_round_trip_cost_near_calibration(self):
        m, xen, k0, guest = self.make_env()
        upcalls = UpcallManager(xen, k0)
        addr = m.register_native("dom0.nop2", lambda cpu: 0)
        stub = upcalls.make_stub("nop2", addr)
        upcalls.new_invocation()
        m.cpu.call_function(stub, [], stack_top=self.stack_top)
        snap = m.account.snapshot()
        m.cpu.call_function(stub, [], stack_top=self.stack_top)
        cost = sum(m.account.delta_since(snap).values())
        assert abs(cost - xen.costs.upcall_round_trip) < \
            0.15 * xen.costs.upcall_round_trip
