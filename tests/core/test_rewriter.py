"""Rewriter: structure of the emitted code and the §4.1 statistics."""

import pytest

from repro.core import (
    CALL_XLATE_SYMBOL,
    RUNTIME_IMPORTS,
    SLOW_PATH_SYMBOL,
    STLB_SYMBOL,
    UnsupportedInstruction,
    rewrite_driver,
)
from repro.drivers import build_e1000_program
from repro.isa import Label, Mem, assemble


def rw(text, constants=None):
    return rewrite_driver(assemble(text, constants=constants))


class TestSequenceStructure:
    def test_fast_path_is_ten_instructions(self):
        # "replaces one memory instruction ... with ten instructions".
        # The function saves %esi in its prologue so three scratch
        # registers are free (no spill), as in typical compiled code.
        out, stats = rw(".globl f\nf: pushl %esi\nmovl (%ebx), %eax\n"
                        "popl %esi\nret")
        body = out.instructions[1:]      # skip the prologue push
        mnems = [i.mnemonic for i in body[:10]]
        assert mnems == ["lea", "mov", "and", "mov", "and", "shr", "cmp",
                         "jne", "xor", "mov"]
        assert stats.spills == 0

    def test_masks_match_paper(self):
        out, _ = rw(".globl f\nf: movl (%ebx), %eax\nret")
        ands = [i for i in out.instructions if i.mnemonic == "and"]
        values = {i.operands[0].value & 0xFFFFFFFF for i in ands}
        assert 0xFFFFF000 in values
        assert 0x00FFF000 in values
        shr = next(i for i in out.instructions if i.mnemonic == "shr")
        assert shr.operands[0].value == 9

    def test_stlb_referenced(self):
        out, _ = rw(".globl f\nf: movl (%ebx), %eax\nret")
        symbols = {op.symbol for i in out.instructions
                   for op in i.operands if isinstance(op, Mem)}
        assert STLB_SYMBOL in symbols

    def test_slow_path_block_appended(self):
        out, _ = rw(".globl f\nf: movl (%ebx), %eax\nret")
        calls = [i for i in out.instructions
                 if i.is_call and i.operands
                 and isinstance(i.operands[0], Label)
                 and i.operands[0].name == SLOW_PATH_SYMBOL]
        assert len(calls) == 1
        # the slow block is after the ret (appended at the end)
        ret_pos = next(i for i, ins in enumerate(out.instructions)
                       if ins.is_return)
        slow_pos = out.instructions.index(calls[0])
        assert slow_pos > ret_pos

    def test_runtime_imports_declared(self):
        out, _ = rw(".globl f\nf: movl (%ebx), %eax\nrep movsl\n"
                    "call *%ecx\nret")
        for sym in RUNTIME_IMPORTS:
            assert sym in out.imports()


class TestWhatGetsRewritten:
    def test_stack_relative_left_alone(self):
        out, stats = rw(".globl f\nf: movl 8(%esp), %eax\n"
                        "movl -4(%ebp), %ecx\nret")
        assert stats.memory_rewritten == 0
        assert len(out.instructions) == 3

    def test_lea_left_alone(self):
        out, stats = rw(".globl f\nf: leal 8(%ebx), %eax\nret")
        assert stats.memory_rewritten == 0

    def test_register_only_left_alone(self):
        out, stats = rw(".globl f\nf: addl %eax, %ebx\nret")
        assert stats.memory_rewritten == 0

    def test_absolute_symbol_rewritten(self):
        out, stats = rw(".comm counter, 4\n.globl f\nf: incl counter\nret")
        assert stats.memory_rewritten == 1

    def test_push_mem_rewritten(self):
        out, stats = rw(".globl f\nf: pushl 4(%ebx)\nret")
        assert stats.memory_rewritten == 1

    def test_string_rewritten(self):
        out, stats = rw(".globl f\nf: rep movsl\nret")
        assert stats.string_rewritten == 1
        # chunk loop present: translate calls for both pointers
        calls = [i.operands[0].name for i in out.instructions
                 if i.is_call and isinstance(i.operands[0], Label)]
        assert calls.count("__svm_translate") == 2

    def test_indirect_call_rewritten(self):
        out, stats = rw(".globl f\nf: call *%eax\nret")
        assert stats.indirect_rewritten == 1
        names = [i.operands[0].name for i in out.instructions
                 if i.is_call and isinstance(i.operands[0], Label)]
        assert CALL_XLATE_SYMBOL in names

    def test_indirect_jmp_rewritten(self):
        out, stats = rw(".globl f\nf: jmp *%eax\nret")
        assert stats.indirect_rewritten == 1

    def test_indirect_call_through_memory(self):
        out, stats = rw(".globl f\nf: call *8(%edi)\nret")
        assert stats.indirect_rewritten == 1
        # the pointer load itself goes through SVM: an stlb cmp exists
        assert any(isinstance(op, Mem) and op.symbol == STLB_SYMBOL
                   for i in out.instructions for op in i.operands)

    def test_std_rejected(self):
        with pytest.raises(UnsupportedInstruction):
            rw(".globl f\nf: std\nret")

    def test_labels_remap_to_same_instructions(self):
        src = """
.globl f
f:
    movl (%ebx), %eax
loop:
    decl %eax
    jne loop
    ret
"""
        out, _ = rw(src)
        # label 'loop' still points at the decl
        assert out.instructions[out.labels["loop"]].mnemonic == "dec"
        assert out.instructions[out.labels["f"]].mnemonic in ("lea", "mov",
                                                              "pushf")


class TestFlagsPreservation:
    def test_flags_live_across_wraps_pushf(self):
        src = """
.globl f
f:
    cmpl $1, %eax
    movl (%ebx), %ecx
    je yes
    ret
yes:
    ret
"""
        out, stats = rw(src)
        assert stats.flag_saves == 1
        mnems = [i.mnemonic for i in out.instructions]
        assert "pushf" in mnems and "popf" in mnems

    def test_no_pushf_when_flags_dead(self):
        out, stats = rw(".globl f\nf: movl (%ebx), %eax\n"
                        "cmpl $1, %eax\nje t\nt: ret")
        assert stats.flag_saves == 0

    def test_no_pushf_when_op_writes_flags(self):
        out, stats = rw(".globl f\nf: cmpl $3, (%ebx)\nje t\nt: ret")
        assert stats.flag_saves == 0


class TestSpills:
    def test_spill_when_registers_live(self):
        # all allocatable registers carry live values across the access
        src = """
.globl f
f:
    movl $1, %eax
    movl $2, %ecx
    movl $3, %edx
    movl $4, %esi
    movl $5, %edi
    movl (%ebx), %ebx
    addl %ecx, %eax
    addl %edx, %eax
    addl %esi, %eax
    addl %edi, %eax
    addl %ebx, %eax
    ret
"""
        out, stats = rw(src)
        assert stats.spills >= 1
        assert any(isinstance(op, Mem) and op.symbol
                   and op.symbol.startswith("__svm_spill")
                   for i in out.instructions for op in i.operands)

    def test_no_spill_when_registers_free(self):
        out, stats = rw(".globl f\nf: pushl %esi\nmovl (%ebx), %eax\n"
                        "popl %esi\nret")
        assert stats.spills == 0

    def test_spill_without_prologue_save(self):
        # with no prologue, callee-saved registers stay live to the ret,
        # leaving only two free scratch registers -> one spill
        out, stats = rw(".globl f\nf: movl (%ebx), %eax\nret")
        assert stats.spills == 1


class TestDriverStats:
    def test_e1000_memory_fraction_near_paper(self):
        # the paper measured ~25% of driver instructions reference memory
        _, stats = rewrite_driver(build_e1000_program())
        assert 0.15 <= stats.memory_fraction <= 0.40

    def test_e1000_expansion_bounded(self):
        _, stats = rewrite_driver(build_e1000_program())
        assert 2.0 <= stats.expansion_factor <= 8.0

    def test_globals_and_comm_preserved(self):
        program = build_e1000_program()
        out, _ = rewrite_driver(program)
        assert out.globals_ == program.globals_
        assert out.comm == program.comm

    def test_rewriting_is_deterministic(self):
        a, _ = rewrite_driver(build_e1000_program())
        b, _ = rewrite_driver(build_e1000_program())
        assert [i.format() for i in a.instructions] == \
               [i.format() for i in b.instructions]


class TestErrorPaths:
    def test_stlb_entries_must_be_power_of_two(self):
        from repro.core import Rewriter
        with pytest.raises(ValueError, match="power of two"):
            Rewriter(stlb_entries=3000)

    def test_scratch_exhaustion_raises(self):
        # _scratch can never satisfy more registers than there are spill
        # slots; the rewriter refuses the instruction rather than emitting
        # an unsound sequence
        from repro.core import Rewriter
        from repro.core.rewriter import N_SPILL_SLOTS, RewriteStats
        from repro.isa import LivenessAnalysis
        p = assemble(".globl f\nf: movl (%ebx), %eax\nret")
        la = LivenessAnalysis(p)
        ins = p.instructions[0]
        stats = RewriteStats()
        with pytest.raises(UnsupportedInstruction, match="scratch"):
            Rewriter()._scratch(la, 0, ins, N_SPILL_SLOTS + 2, stats)

    def test_std_message_names_the_instruction(self):
        with pytest.raises(UnsupportedInstruction, match="std"):
            rw(".globl f\nf: std\nrep movsl\ncld\nret")

    def test_annotations_cover_every_rewritten_site(self):
        out, stats = rw(".globl f\nf: pushl %esi\nmovl (%ebx), %eax\n"
                        "movl %eax, (%ebx)\npopl %esi\nret")
        assert len(stats.annotations) == 2
        assert all(a.kind == "memory" for a in stats.annotations)
        for ann in stats.annotations:
            assert 0 <= ann.start < ann.end <= len(out.instructions)
        assert stats.site_categories["memory"] == 2

    def test_site_categories_track_flags_and_spills(self):
        out, stats = rw(".globl f\nf: cmpl $1, %eax\nmovl (%ebx), %ecx\n"
                        "je t\nt: ret")
        assert stats.site_categories.get("flags_wrapped_sites", 0) == 1
        out, stats = rw(".globl f\nf: movl (%ebx), %eax\nret")
        assert stats.site_categories.get("spill_slot_sites", 0) == 1
