"""§4.5.1 extension: bounds checks on variable-offset stack accesses.

The paper leaves stack corruption as future work ("accesses to constant
offsets from the stack pointer can be potentially statically verified.
For the small number of variable-offset accesses ... additional validity
checks would need to be inserted"). We implement exactly that as an
opt-in rewriter mode and verify both halves: constant offsets are
statically waved through, variable offsets are checked — and a stack
smash through a computed index aborts the driver, not the hypervisor.
"""

import pytest

from repro.core import (
    DriverAborted,
    ParavirtNetDevice,
    Rewriter,
    StackProtectionFault,
    TwinDriverManager,
)
from repro.core.rewriter import STACK_FAULT_SYMBOL, STACK_HI_SYMBOL, \
    STACK_LO_SYMBOL
from repro.drivers.e1000 import DRIVER_CONSTANTS, E1000_ASM
from repro.isa import Label, Mem, assemble
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def rw(text, protect=True):
    return Rewriter(protect_stack=protect).rewrite(assemble(text))


class TestEmission:
    def test_constant_offset_statically_verified(self):
        out, stats = rw(".globl f\nf: movl 8(%esp), %eax\n"
                        "movl -12(%ebp), %ecx\nret")
        assert stats.stack_verified == 2
        assert stats.stack_checked == 0
        assert len(out.instructions) == 3      # untouched

    def test_variable_offset_gets_bounds_check(self):
        out, stats = rw(".globl f\nf: movl 8(%esp,%ecx,4), %eax\nret")
        assert stats.stack_checked == 1
        symbols = {op.symbol for i in out.instructions
                   for op in i.operands if isinstance(op, Mem)}
        assert STACK_LO_SYMBOL in symbols
        assert STACK_HI_SYMBOL in symbols
        calls = [i.operands[0].name for i in out.instructions
                 if i.is_call and isinstance(i.operands[0], Label)]
        assert STACK_FAULT_SYMBOL in calls

    def test_disabled_by_default(self):
        out, stats = rw(".globl f\nf: movl 8(%esp,%ecx,4), %eax\nret",
                        protect=False)
        assert stats.stack_checked == 0
        assert len(out.instructions) == 2

    def test_heap_accesses_unaffected(self):
        _, with_protect = rw(".globl f\nf: movl (%ebx), %eax\nret")
        _, without = rw(".globl f\nf: movl (%ebx), %eax\nret",
                        protect=False)
        assert with_protect.memory_rewritten == without.memory_rewritten


def make_twin(program=None, protect_stack=True):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    # recovery off: these tests assert the raw §4.5 abort semantics
    twin = TwinDriverManager(xen, k0, program=program,
                             protect_stack=protect_stack,
                             recovery=False)
    nic = m.add_nic()
    twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    return m, xen, twin, dev, nic


def buggy_program(index_value):
    """e1000 with an indexed stack store in the xmit path — in-bounds or a
    smash, depending on the index the 'attacker' controls."""
    bad = E1000_ASM.replace(
        "    incl e1000_xmit_calls",
        f"    movl ${index_value}, %ecx\n"
        "    movl $0x41414141, -16(%esp,%ecx,4)\n"
        "    incl e1000_xmit_calls", 1)
    return assemble(bad, constants=DRIVER_CONSTANTS, name="e1000-stk")


class TestEndToEnd:
    def test_driver_works_with_protection_on(self):
        m, xen, twin, dev, nic = make_twin()
        assert twin.rewrite_stats.stack_verified > 0
        for _ in range(10):
            assert dev.transmit(700)
        frame = GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + bytes(700)
        assert m.wire.inject(nic, frame)
        assert dev.rx_packets == 1
        assert not twin.aborted

    def test_in_bounds_indexed_access_allowed(self):
        m, xen, twin, dev, nic = make_twin(program=buggy_program(1))
        assert dev.transmit(500)       # writes just below esp: in window
        assert not twin.aborted

    def test_stack_smash_aborts_driver(self):
        # index drives the effective address far below the stack window
        m, xen, twin, dev, nic = make_twin(program=buggy_program(-100000))
        with pytest.raises(DriverAborted) as info:
            dev.transmit(500)
        assert isinstance(info.value.cause, StackProtectionFault)
        assert twin.aborted

    def test_smash_not_caught_without_protection(self):
        # control experiment: with the extension off, the wild stack write
        # lands wherever the pointer says (here: unmapped -> page fault,
        # still aborted, but only because the page happened to be unmapped)
        m, xen, twin, dev, nic = make_twin(program=buggy_program(-100000),
                                           protect_stack=False)
        with pytest.raises(DriverAborted) as info:
            dev.transmit(500)
        assert not isinstance(info.value.cause, StackProtectionFault)

    def test_vm_instance_also_protected(self):
        # the same rewritten binary runs in dom0: its identity runtime has
        # the dom0 kernel-stack bounds programmed
        m, xen, twin, dev, nic = make_twin()
        lo_slot = twin.dom0_runtime.symbols[STACK_LO_SYMBOL]
        lo = twin.dom0_kernel.memory_view().read_u32(lo_slot)
        from repro.osmodel import layout as L
        assert lo == L.KERNEL_STACK_BASE
