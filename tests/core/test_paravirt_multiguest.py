"""Paravirtual device details and multi-guest / multi-NIC twin setups."""

import pytest

from repro.core import HEADER_COPY_BYTES, ParavirtNetDevice, \
    TwinDriverManager
from repro.machine import Machine, PAGE_SIZE
from repro.osmodel import Kernel
from repro.xen import Hypervisor


def make_env(n_nics=1, n_guests=1):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, pool_size=512)
    nics = [m.add_nic() for _ in range(n_nics)]
    for nic in nics:
        twin.attach_nic(nic)
    devices = []
    for g in range(n_guests):
        guest = xen.create_domain(f"guest{g}")
        kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
        devices.append(ParavirtNetDevice(
            twin, kg, mac=b"\x00\x16\x3e\xaa\x01" + bytes([g + 1])))
    xen.switch_to(devices[0].kernel.domain)
    return m, xen, twin, devices, nics


class TestFragmentation:
    def test_small_frame_header_only(self):
        m, xen, twin, (dev,), nics = make_env()
        header, frags = dev.guest_frame_fragments(dev._tx_buf, 80)
        assert len(header) == 80
        assert frags == []

    def test_large_frame_splits_at_96(self):
        m, xen, twin, (dev,), nics = make_env()
        header, frags = dev.guest_frame_fragments(dev._tx_buf, 1400)
        assert len(header) == HEADER_COPY_BYTES
        assert sum(size for _, _, size in frags) == 1400 - HEADER_COPY_BYTES

    def test_fragments_never_cross_pages(self):
        m, xen, twin, (dev,), nics = make_env()
        # force the staging buffer to start near a page end is not
        # possible (page-aligned alloc), but a frame longer than
        # one page minus the header must split into two fragments
        header, frags = dev.guest_frame_fragments(dev._tx_buf,
                                                  PAGE_SIZE + 500)
        assert len(frags) == 2
        for page, off, size in frags:
            assert off + size <= PAGE_SIZE
            assert page % PAGE_SIZE == 0

    def test_fragment_pages_are_machine_addresses(self):
        m, xen, twin, (dev,), nics = make_env()
        _, frags = dev.guest_frame_fragments(dev._tx_buf, 1400)
        for page, off, size in frags:
            frame = page >> 12
            assert m.phys.frame_allocated(frame)


class TestMultiGuest:
    def test_demux_by_mac(self):
        m, xen, twin, devices, nics = make_env(n_guests=3)
        for i, dev in enumerate(devices):
            dev.keep_rx_payloads = True
            frame = dev.mac + b"\x00" * 6 + b"\x08\x00" + bytes([i]) * 100
            assert m.wire.inject(nics[0], frame)
        for i, dev in enumerate(devices):
            assert dev.rx_packets == 1
            assert dev.rx_payloads[0] == bytes([i]) * 100

    def test_each_guest_can_transmit(self):
        m, xen, twin, devices, nics = make_env(n_guests=3)
        m.wire.keep_payloads = True
        for dev in devices:
            xen.switch_to(dev.kernel.domain)
            assert dev.transmit(300)
        macs = {frame[6:12] for frame in m.wire.transmitted}
        assert macs == {dev.mac for dev in devices}

    def test_transmit_from_any_context_no_switch(self):
        m, xen, twin, devices, nics = make_env(n_guests=2)
        xen.switch_to(devices[1].kernel.domain)
        before = xen.switches
        assert devices[1].transmit(500)
        assert xen.switches == before


class TestMultiNic:
    def test_guest_devices_spread_over_nics(self):
        m, xen, twin, devices, nics = make_env(n_nics=3, n_guests=3)
        assert {d.netdev_addr for d in devices} == set(twin.netdev_order)

    def test_traffic_on_each_nic(self):
        m, xen, twin, devices, nics = make_env(n_nics=3, n_guests=3)
        for dev in devices:
            xen.switch_to(dev.kernel.domain)
            for _ in range(4):
                assert dev.transmit(600)
        for nic in nics:
            assert nic.stats.tx_packets == 4

    def test_rx_on_each_nic(self):
        m, xen, twin, devices, nics = make_env(n_nics=2, n_guests=2)
        for nic, dev in zip(nics, devices):
            frame = dev.mac + b"\x00" * 6 + b"\x08\x00" + bytes(200)
            assert m.wire.inject(nic, frame)
        assert all(dev.rx_packets == 1 for dev in devices)

    def test_explicit_binding(self):
        m, xen, twin, devices, nics = make_env(n_nics=2, n_guests=1)
        twin.bind_device(devices[0], twin.netdev_order[1])
        xen.switch_to(devices[0].kernel.domain)
        assert devices[0].transmit(400)
        assert nics[1].stats.tx_packets == 1
        assert nics[0].stats.tx_packets == 0


class TestToolchainRoundTrip:
    """The generated (rewritten) program is itself valid assembly and
    valid binary: text and bytes both round-trip."""

    def test_rewritten_driver_text_roundtrip(self):
        from repro.core import rewrite_driver
        from repro.drivers import build_e1000_program
        from repro.isa import assemble
        rewritten, _ = rewrite_driver(build_e1000_program())
        again = assemble(rewritten.to_text(), name="again")
        assert [i.format() for i in again.instructions] == \
            [i.format() for i in rewritten.instructions]
        assert again.labels == rewritten.labels

    def test_rewritten_driver_binary_roundtrip(self):
        from repro.core import rewrite_driver
        from repro.drivers import build_e1000_program
        from repro.isa import decode_program, encode_program
        rewritten, _ = rewrite_driver(build_e1000_program())
        data = encode_program(rewritten)
        again = decode_program(data, labels=rewritten.labels)
        assert [i.format() for i in again.instructions] == \
            [i.format() for i in rewritten.instructions]

    def test_binary_size_reported(self):
        from repro.core import rewrite_driver
        from repro.drivers import build_e1000_program
        from repro.isa import code_size
        program = build_e1000_program()
        rewritten, _ = rewrite_driver(program)
        assert code_size(rewritten) > code_size(program)
