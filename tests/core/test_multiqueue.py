"""Twin queue sharding: RSS demux, masked-guest parking, contention."""

import pytest

from repro.core import ParavirtNetDevice, TwinDriverManager
from repro.machine import Machine
from repro.machine.nic import flow_hash
from repro.osmodel import Kernel
from repro.xen import Hypervisor


def make_env(n_guests=2, num_queues=4, vcpus=1):
    m = Machine()
    xen = Hypervisor(m, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, pool_size=512, num_queues=num_queues)
    nic = m.add_nic(num_queues=num_queues)
    twin.attach_nic(nic)
    devices = []
    for g in range(n_guests):
        guest = xen.create_domain(f"guest{g}")
        kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
        devices.append(ParavirtNetDevice(
            twin, kg, mac=b"\x00\x16\x3e\xaa\x01" + bytes([g + 1])))
    xen.switch_to(devices[0].kernel.domain)
    return m, xen, twin, devices, nic


def inject(m, nic, dev, tag=0):
    frame = (dev.mac + b"\x00\x22\x33\x44\x55\x66" + b"\x08\x00"
             + bytes([tag]) * 100)
    return m.wire.inject(nic, frame)


class TestQueueSharding:
    def test_num_queues_rejects_zero(self):
        m = Machine()
        xen = Hypervisor(m)
        dom0 = xen.create_domain("dom0", is_dom0=True)
        k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
        with pytest.raises(ValueError):
            TwinDriverManager(xen, k0, pool_size=64, num_queues=0)

    def test_guests_pinned_to_flow_hash_queue(self):
        m, xen, twin, devices, nic = make_env(n_guests=4)
        for dev in devices:
            assert (twin._guest_rx_queue[dev.mac]
                    == flow_hash(dev.mac) % twin.num_queues)

    def test_rx_lands_on_guest_queue_then_delivers(self):
        m, xen, twin, devices, nic = make_env(n_guests=2)
        for dev in devices:
            assert inject(m, nic, dev)
            assert dev.rx_packets == 1
        assert all(not q.rx for q in twin.queues)

    def test_single_queue_skips_rss_charge(self):
        m, xen, twin, devices, nic = make_env(n_guests=1, num_queues=1)
        reg = m.obs.registry
        assert inject(m, nic, devices[0])
        # the single-queue fast path must stay bit-identical to the
        # pre-SMP model: no rss_demux charge ever lands
        prof_counter = reg.counter("xen.virq_coalesced").value
        assert prof_counter >= 1
        assert twin.num_queues == 1

    def test_multi_queue_charges_rss_demux(self):
        single = make_env(n_guests=1, num_queues=1)
        multi = make_env(n_guests=1, num_queues=4)
        costs = single[1].costs
        xen_single = self._rx_xen_cycles(*single)
        xen_multi = self._rx_xen_cycles(*multi)
        # same packet, same path — the multiqueue run adds exactly the
        # rss demux, the queue lock, and one stlb partition refill
        extra = xen_multi - xen_single
        assert extra == (costs.rss_demux + costs.lock_uncontended
                         + costs.stlb_partition_refill)

    @staticmethod
    def _rx_xen_cycles(m, xen, twin, devices, nic):
        before = m.account.cycles["Xen"]
        assert inject(m, nic, devices[0])
        return m.account.cycles["Xen"] - before


class TestMaskedGuestParking:
    def test_masked_batch_parked_uncharged(self):
        m, xen, twin, devices, nic = make_env(n_guests=1)
        dev = devices[0]
        dev.kernel.domain.disable_virq()
        count = m.obs.registry.counter("xen.virq_coalesced").value
        assert inject(m, nic, dev)
        assert dev.rx_packets == 0
        assert twin.rx_backlog == 1      # parked, not dropped
        assert m.obs.registry.counter("xen.virq_coalesced").value == count

    def test_unmask_replays_parked_batch_once(self):
        m, xen, twin, devices, nic = make_env(n_guests=1)
        dev = devices[0]
        dev.kernel.domain.disable_virq()
        for tag in range(3):
            assert inject(m, nic, dev, tag=tag)
        count = m.obs.registry.counter("xen.virq_coalesced").value
        dev.kernel.domain.enable_virq()
        assert dev.rx_packets == 3
        assert twin.rx_backlog == 0
        # ONE coalesced virq for the replayed batch — not one at park
        # time plus one at replay (the double-count this PR fixes)
        assert (m.obs.registry.counter("xen.virq_coalesced").value
                == count + 1)

    def test_mask_affects_only_that_guest(self):
        m, xen, twin, devices, nic = make_env(n_guests=2)
        masked, open_ = devices
        masked.kernel.domain.disable_virq()
        assert inject(m, nic, masked)
        assert inject(m, nic, open_)
        assert masked.rx_packets == 0
        assert open_.rx_packets == 1
        masked.kernel.domain.enable_virq()
        assert masked.rx_packets == 1

    def test_drop_rx_backlog_clears_parked(self):
        m, xen, twin, devices, nic = make_env(n_guests=1)
        dev = devices[0]
        dev.kernel.domain.disable_virq()
        assert inject(m, nic, dev)
        assert twin.rx_backlog == 1
        twin.drop_rx_backlog()
        assert twin.rx_backlog == 0
        dev.kernel.domain.enable_virq()
        assert dev.rx_packets == 0


class TestContentionModel:
    def test_lock_handoff_charged_on_vcpu_change(self):
        m, xen, twin, devices, nic = make_env(n_guests=1, num_queues=4,
                                              vcpus=2)
        dev = devices[0]
        qi = twin._guest_rx_queue[dev.mac]
        assert inject(m, nic, dev)
        assert twin.queues[qi].lock_owner == xen._cur_vcpu.id
        # same vCPU flushes again: uncontended
        before = m.account.cycles["Xen"]
        assert inject(m, nic, dev)
        uncontended = m.account.cycles["Xen"] - before
        # another vCPU takes the flush lock: the handoff premium
        xen.activate_vcpu(xen.vcpus[1])
        xen.switch_to(dev.kernel.domain)
        before = m.account.cycles["Xen"]
        assert inject(m, nic, dev)
        handoff = m.account.cycles["Xen"] - before
        assert (handoff - uncontended
                == xen.costs.lock_handoff - xen.costs.lock_uncontended)
        assert twin.queues[qi].lock_owner == 1

    def test_stlb_partition_refill_on_guest_change(self):
        m, xen, twin, devices, nic = make_env(n_guests=2, num_queues=1)
        # single queue so both guests share one shard; force multi
        # accounting off — refills only modeled when sharded
        assert inject(m, nic, devices[0])
        m2, xen2, twin2, devices2, nic2 = make_env(n_guests=2, num_queues=4)
        a, b = devices2
        qa = twin2._guest_rx_queue[a.mac]
        qb = twin2._guest_rx_queue[b.mac]
        assert inject(m2, nic2, a)
        assert twin2.queues[qa].last_guest == a.mac
        if qa == qb:
            before = m2.account.cycles["Xen"]
            assert inject(m2, nic2, b)
            delta_switch = m2.account.cycles["Xen"] - before
            before = m2.account.cycles["Xen"]
            assert inject(m2, nic2, b)
            delta_warm = m2.account.cycles["Xen"] - before
            assert (delta_switch - delta_warm
                    == xen2.costs.stlb_partition_refill)
        else:
            # distinct shards: each queue stays warm for its guest
            assert inject(m2, nic2, b)
            assert twin2.queues[qa].last_guest == a.mac
            assert twin2.queues[qb].last_guest == b.mac
