"""Planned handover: the request->drain->freeze->swap->replay->resume
state machine (DESIGN.md §14).

Drives :class:`repro.core.handover.HandoverManager` through binary swaps
and queue re-homings with traffic in every awkward place — queued rx,
parked masked-virq batches, tx frames arriving mid-window, interrupts
latched behind masked NIC lines — and asserts the zero-loss contract:
every packet is delivered (and accounted) exactly once, the pool stays
balanced, and a handover of a quarantined instance falls back to the
existing recovery path instead of pretending to drain a dead fast path.
"""

import pytest

from repro.configs import build
from repro.core import (
    HandoverManager,
    HandoverVetoed,
    ParavirtNetDevice,
    RecoveryPolicy,
    TwinDriverManager,
)
from repro.core.handover import HandoverError
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.osmodel.skbuff import SkBuff
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def make_twin(policy=None, vcpus=1, num_queues=1, **kwargs):
    m = Machine()
    xen = Hypervisor(m, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, recovery_policy=policy,
                             num_queues=num_queues, **kwargs)
    nic = m.add_nic(num_queues=num_queues)
    twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    return m, xen, twin, dev, nic


def rx_frame(mac=GUEST_MAC, payload=b"\x00" * 700):
    return mac + b"\x00" * 6 + b"\x08\x00" + payload


class TestSwapBinary:
    def test_swap_is_zero_loss_and_bumps_the_epoch_twice(self):
        m, xen, twin, dev, nic = make_twin()
        mgr = HandoverManager(twin)
        for _ in range(10):
            assert m.wire.inject(nic, rx_frame())
            assert dev.transmit(700)
        report = mgr.swap_binary()
        assert report.ok and report.kind == "swap"
        assert report.phases == ["request", "drain", "freeze", "swap",
                                 "replay", "resume"]
        # unregister + register each bump the CodeRegistry epoch, so
        # every JIT superblock against the old program is invalid
        assert report.epoch_after >= report.epoch_before + 2
        assert mgr.state == "idle"
        # the new instance carries traffic
        for _ in range(10):
            assert m.wire.inject(nic, rx_frame())
            assert dev.transmit(700)
        assert dev.rx_packets == 20
        assert m.wire.tx_count == 20
        assert twin.hyp_support.pool.balanced

    def test_swap_under_smp_multiqueue_jit(self):
        m, xen, twin, dev, nic = make_twin(vcpus=2, num_queues=2)
        m.cpu.jit_enabled = True
        mgr = HandoverManager(twin)
        for _ in range(8):
            assert m.wire.inject(nic, rx_frame())
        report = mgr.swap_binary()
        assert report.ok
        for _ in range(8):
            assert m.wire.inject(nic, rx_frame())
            assert dev.transmit(700)
        assert dev.rx_packets == 16 and m.wire.tx_count == 8

    def test_traffic_arriving_mid_window_is_not_dropped(self):
        m, xen, twin, dev, nic = make_twin()
        mgr = HandoverManager(twin)

        def mid_window():
            # rx lands while the line is masked: the cause latches in
            # ICR and fires at unmask
            assert m.wire.inject(nic, rx_frame())
            nic.flush_interrupts()
            # tx lands while frozen: byte-snapshotted and replayed
            assert dev.transmit(700)

        report = mgr.swap_binary(mid_window_hook=mid_window)
        assert report.ok
        assert report.replayed_tx == 1
        assert dev.rx_packets == 1
        assert m.wire.tx_count == 1
        assert twin._frozen_tx == [] and twin._deferred_irqs == []
        # the masked-for wait was observed into the blip histogram
        assert m.obs.registry.histogram(
            "health.virq_defer_cycles").count >= 1

    def test_parked_masked_virq_batch_survives_the_swap(self):
        m, xen, twin, dev, nic = make_twin()
        mgr = HandoverManager(twin)
        dev.kernel.domain.virq_enabled = False
        for _ in range(4):
            assert m.wire.inject(nic, rx_frame())
        assert twin.rx_backlog == 4
        report = mgr.swap_binary()
        assert report.ok
        assert report.carried_parked == 4
        assert twin.rx_backlog == 4          # still parked, still owed
        vc = m.obs.registry.counter("xen.virq_coalesced")
        before = vc.value
        dev.kernel.domain.enable_virq()
        # delivered exactly once, under ONE coalesced virq
        assert dev.rx_packets == 4
        assert vc.value == before + 1
        assert twin.rx_backlog == 0
        assert twin.hyp_support.pool.balanced

    def test_frozen_twin_defers_everything(self):
        m, xen, twin, dev, nic = make_twin()
        twin.frozen = True
        assert dev.transmit(700)
        assert m.wire.tx_count == 0 and len(twin._frozen_tx) == 1
        assert m.wire.inject(nic, rx_frame())
        assert dev.rx_packets == 0 and len(twin._deferred_irqs) == 1
        twin.frozen = False
        twin.retry_deferred_interrupts()
        assert twin.replay_frozen_tx() == [True]
        assert dev.rx_packets == 1 and m.wire.tx_count == 1

    def test_replay_refuses_while_frozen(self):
        m, xen, twin, dev, nic = make_twin()
        twin.frozen = True
        with pytest.raises(RuntimeError):
            twin.replay_frozen_tx()

    def test_reentrant_handover_is_rejected(self):
        m, xen, twin, dev, nic = make_twin()
        mgr = HandoverManager(twin)

        def reenter():
            with pytest.raises(HandoverError):
                mgr.swap_binary()

        assert mgr.swap_binary(mid_window_hook=reenter).ok

    def test_failed_verification_vetoes_before_any_disruption(self,
                                                              monkeypatch):
        m, xen, twin, dev, nic = make_twin()
        mgr = HandoverManager(twin)
        old_driver = twin.hyp_driver

        class BadReport:
            ok = False

        import repro.analysis.verifier as verifier
        monkeypatch.setattr(verifier, "verify_program",
                            lambda *a, **k: BadReport())
        with pytest.raises(HandoverVetoed):
            mgr.swap_binary()
        # the old instance was never disturbed
        assert twin.hyp_driver is old_driver
        assert not twin.frozen and not nic.line_masked
        assert mgr.state == "idle"
        assert m.obs.registry.counter("handover.veto").value == 1
        assert dev.transmit(700) and m.wire.tx_count == 1


class TestFallbackToRecovery:
    def test_swap_of_degraded_instance_falls_back_to_reload(self):
        m, xen, twin, dev, nic = make_twin(
            policy=RecoveryPolicy(backoff_initial=10_000))
        mgr = HandoverManager(twin)
        twin.svm.inject_fault()
        assert dev.transmit(700)             # contained -> degraded
        assert twin.recovery.state == "degraded"
        report = mgr.swap_binary()
        assert report.fallback == "recovery"
        assert report.ok                     # the reload succeeded
        assert twin.recovery.state == "active"
        assert m.obs.registry.counter("handover.fallback").value == 1
        assert dev.transmit(700)

    def test_swap_of_broken_instance_reports_failure(self):
        policy = RecoveryPolicy(backoff_initial=1, breaker_threshold=1,
                                max_reload_attempts=1)
        m, xen, twin, dev, nic = make_twin(policy=policy)
        twin.svm.inject_fault(count=50)      # every reload relapses
        for _ in range(8):
            dev.transmit(700)
            if twin.recovery.broken:
                break
        assert twin.recovery.broken
        mgr = HandoverManager(twin)
        report = mgr.swap_binary()
        assert report.fallback == "recovery" and not report.ok


class TestRehome:
    def make_pair(self, **kwargs):
        sut = build("handover-pair", **kwargs)
        return (sut, sut.twin, sut.extras["secondary"],
                sut.extras["devices"], sut.nics[0],
                sut.extras["secondary_nics"][0], sut.extras["handover"])

    def inject(self, m, nic, dev, n=1):
        for _ in range(n):
            assert m.wire.inject(nic, rx_frame(mac=dev.mac))
        nic.flush_interrupts()

    def test_rehome_moves_queue_state_and_traffic(self):
        sut, twin, sec, devices, pnic, snic, mgr = self.make_pair(
            n_guests=2)
        m = sut.machine
        self.inject(m, pnic, devices[0], 6)
        self.inject(m, pnic, devices[1], 6)
        report = mgr.rehome_guest(devices[0], sec)
        assert report.ok and report.kind == "rehome"
        assert devices[0].twin is sec
        assert devices[0] in sec.guest_devices
        assert devices[0] not in twin.guest_devices
        assert devices[0].mac not in twin.guests_by_mac
        # post-rehome traffic flows through the second instance's NIC
        self.inject(m, snic, devices[0], 6)
        self.inject(m, pnic, devices[1], 6)
        assert devices[0].rx_packets == 12
        assert devices[1].rx_packets == 12
        # and the moved guest transmits through the second instance
        before = sec.hyp_driver.invocations
        assert devices[0].transmit(700)
        assert sec.hyp_driver.invocations > before

    def test_rehome_carries_parked_batches_exactly_once(self):
        sut, twin, sec, devices, pnic, snic, mgr = self.make_pair(
            n_guests=1)
        m = sut.machine
        devices[0].kernel.domain.virq_enabled = False
        self.inject(m, pnic, devices[0], 5)
        assert twin.rx_backlog == 5
        report = mgr.rehome_guest(devices[0], sec)
        assert report.carried_parked == 5
        assert twin.rx_backlog == 0 and sec.rx_backlog == 5
        vc = m.obs.registry.counter("xen.virq_coalesced")
        before = vc.value
        devices[0].kernel.domain.enable_virq()
        assert devices[0].rx_packets == 5
        assert vc.value == before + 1
        assert twin.hyp_support.pool.balanced
        assert sec.hyp_support.pool.balanced

    def test_tx_admitted_mid_rehome_replays_through_the_target(self):
        sut, twin, sec, devices, pnic, snic, mgr = self.make_pair(
            n_guests=1)
        m = sut.machine
        # a transmit admitted while the source is frozen is parked there
        # but must replay through the twin that owns the device AFTER
        # the move — the rehome's replay phase routes via ``dev.twin``
        twin.frozen = True
        assert devices[0].transmit(700)
        assert len(twin._frozen_tx) == 1
        twin.frozen = False
        before = sec.hyp_driver.invocations
        report = mgr.rehome_guest(devices[0], sec)
        assert report.replayed_tx == 1
        assert twin._frozen_tx == []
        assert sec.hyp_driver.invocations > before
        assert m.wire.tx_count == 1

    def test_rehome_to_self_or_niclless_target_is_rejected(self):
        sut, twin, sec, devices, pnic, snic, mgr = self.make_pair(
            n_guests=1)
        with pytest.raises(HandoverError):
            mgr.rehome_guest(devices[0], twin)

    def test_rehome_evacuates_a_degraded_source(self):
        sut, twin, sec, devices, pnic, snic, mgr = self.make_pair(
            n_guests=1)
        m = sut.machine
        twin.recovery.policy.backoff_initial = 10_000  # stay degraded
        # park a batch, then crash the source: the quarantine carries
        # the packets to payload form
        devices[0].kernel.domain.virq_enabled = False
        self.inject(m, pnic, devices[0], 3)
        twin.svm.inject_fault()
        assert devices[0].transmit(700)      # contained -> degraded
        assert twin.recovery.degraded
        assert twin.rx_backlog == 3          # carried as payloads
        report = mgr.rehome_guest(devices[0], sec)
        assert report.ok and report.carried_parked == 3
        devices[0].kernel.domain.enable_virq()
        assert devices[0].rx_packets == 3
        # the evacuated guest is fully served by the healthy instance
        self.inject(m, snic, devices[0], 4)
        assert devices[0].rx_packets == 7
        assert sec.hyp_support.pool.balanced


class TestQuarantineCarriesParkedBatches:
    """Bugfix: rx batches parked for a virq-masked guest used to be
    dropped by ``drop_rx_backlog`` when the twin was quarantined before
    the unmask hook fired."""

    def test_parked_batch_survives_quarantine_and_reload(self):
        m, xen, twin, dev, nic = make_twin(
            policy=RecoveryPolicy(backoff_initial=10_000))
        dev.kernel.domain.virq_enabled = False
        # coalesce the four receives into one interrupt so they park as
        # ONE batch (one replay delivery, one coalesced virq)
        nic.interrupt_batch = 8
        for _ in range(4):
            assert m.wire.inject(nic, rx_frame())
        nic.flush_interrupts()
        assert twin.rx_backlog == 4
        twin.svm.inject_fault()
        assert dev.transmit(700)             # quarantine fires here
        assert twin.recovery.state == "degraded"
        snap = twin.recovery.counters_snapshot()
        assert snap["parked_carried"] == 4
        assert twin.rx_backlog == 4          # payload form, still owed
        vc = m.obs.registry.counter("xen.virq_coalesced")
        before = vc.value
        dev.kernel.domain.enable_virq()
        # each packet accounted exactly once: one batch, one virq
        assert dev.rx_packets == 4
        assert vc.value == before + 1
        assert twin.rx_backlog == 0
        assert twin.hyp_support.pool.balanced

    def test_broadcast_parked_batches_release_the_shared_skb_once(self):
        m = Machine()
        xen = Hypervisor(m)
        dom0 = xen.create_domain("dom0", is_dom0=True)
        k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
        twin = TwinDriverManager(
            xen, k0, recovery_policy=RecoveryPolicy(backoff_initial=10_000))
        nic = m.add_nic()
        twin.attach_nic(nic)
        devs = []
        for i in range(3):
            guest = xen.create_domain(f"guest{i}")
            kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
            dev = ParavirtNetDevice(twin, kg,
                                    mac=GUEST_MAC[:-1] + bytes([i + 1]))
            dev.kernel.domain.virq_enabled = False
            devs.append(dev)
        xen.switch_to(devs[0].kernel.domain)
        bcast = b"\xff" * 6 + b"\x00" * 6 + b"\x08\x00" + bytes(500)
        assert m.wire.inject(nic, bcast)
        # one skb, three parked batches referencing it
        assert twin.rx_backlog == 3
        twin.svm.inject_fault()
        devs[0].transmit(700)
        assert twin.recovery.state == "degraded"
        pool = twin.hyp_support.pool
        assert pool.balanced
        for dev in devs:
            dev.kernel.domain.enable_virq()
            assert dev.rx_packets == 1
        assert twin.rx_backlog == 0


class TestDemuxRxPoolBalance:
    """Bugfix: ``recovery._demux_rx`` leaked pool skbs whose refcount was
    left stale by a broadcast batch interrupted mid-drain."""

    def _pool_skb(self, twin, dst_mac, payload=b"\x55" * 300, refcnt=1):
        mem = twin.dom0_kernel.memory_view()
        pool = twin.hyp_support.pool
        skb_addr = pool.acquire()
        assert skb_addr is not None
        skb = SkBuff(mem, skb_addr)
        frame = dst_mac + b"\x00" * 6 + b"\x08\x00" + payload
        head = skb.head
        mem.write_bytes(head, frame)
        # post-eth_type_trans shape: data past the pulled header
        skb.data = head + 14
        skb.tail = head + len(frame)
        skb.len = len(payload)
        skb.nr_frags = 0
        skb.refcnt = refcnt
        return skb_addr

    def test_unicast_with_stale_refcnt_returns_to_pool(self):
        m, xen, twin, dev, nic = make_twin()
        pool = twin.hyp_support.pool
        # refcnt 3: two deliveries that will never happen (their queues
        # were wiped at quarantine)
        skb_addr = self._pool_skb(twin, GUEST_MAC, refcnt=3)
        assert pool.outstanding == {skb_addr}
        twin.recovery._demux_rx(skb_addr)
        assert dev.rx_packets == 1
        # without the stale-refcnt reset the free is a mere decrement
        # and the buffer stays outstanding forever
        assert not pool.outstanding and pool.balanced

    def test_broadcast_with_stale_refcnt_returns_to_pool(self):
        m, xen, twin, dev, nic = make_twin()
        pool = twin.hyp_support.pool
        skb_addr = self._pool_skb(twin, b"\xff" * 6, refcnt=4)
        twin.recovery._demux_rx(skb_addr)
        assert dev.rx_packets == 1           # every guest got a copy
        assert not pool.outstanding and pool.balanced

    def test_unknown_unicast_pool_skb_returns_to_pool(self):
        m, xen, twin, dev, nic = make_twin()
        pool = twin.hyp_support.pool
        skb_addr = self._pool_skb(twin, b"\x00\x99" * 3, refcnt=2)
        twin.recovery._demux_rx(skb_addr)
        assert dev.rx_packets == 0           # dom0's own stack took it
        assert not pool.outstanding and pool.balanced


class TestDegradedTransmitLeak:
    """Bugfix: a dom0 xmit failure mid-``degraded_transmit`` leaked the
    staged dom0 skb."""

    def test_failed_dom0_xmit_frees_the_staged_skb(self, monkeypatch):
        m, xen, twin, dev, nic = make_twin(
            policy=RecoveryPolicy(backoff_initial=10_000))
        twin.svm.inject_fault()
        assert dev.transmit(700)             # now degraded
        kernel = twin.dom0_kernel
        baseline = kernel.heap.allocated_bytes

        def boom(skb, ndev):
            raise RuntimeError("ring wedged")

        monkeypatch.setattr(kernel, "transmit_skb", boom)
        with pytest.raises(RuntimeError):
            twin.recovery.degraded_transmit(dev, dev._tx_buf, 700)
        # the staged skb (struct + buffer) went back to the heap
        assert kernel.heap.allocated_bytes == baseline
