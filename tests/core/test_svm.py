"""SVM: stlb hashing, miss handling, collisions, pair mapping, protection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMPTY_TAG,
    STLB_ENTRIES,
    SvmManager,
    SvmMapExhausted,
    SvmProtectionFault,
    SvmView,
    stlb_index,
)
from repro.machine import AddressSpace, HYPERVISOR_BASE, Machine, PAGE_SIZE


def make_env(identity=False):
    m = Machine()
    dom0 = AddressSpace("dom0", m.phys, m.hypervisor_table)
    dom0.map_new_pages(0xC0000000, 8)
    if identity:
        table_addr = 0xC0000000          # table inside dom0 itself
        dom0.map_new_pages(0xC0100000, 8)  # extra data space
        svm = SvmManager(m, table_addr, dom0, identity=True, name="ident")
    else:
        # hypervisor data pages for the table
        table_addr = 0xF0300000
        for i in range(8):
            m.hypervisor_table.map((table_addr >> 12) + i,
                                   m.phys.allocate_frame())
        svm = SvmManager(m, table_addr, dom0, identity=False,
                         map_base=0xF4000000, name="hyp")
    return m, dom0, svm


class TestHashing:
    def test_index_uses_low_page_bits(self):
        assert stlb_index(0xC0001234) == 0x001
        assert stlb_index(0xC0FFF000) == 0xFFF
        assert stlb_index(0xC1001000) == 0x001   # collides with 0xC0001000

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_index_in_range(self, vaddr):
        assert 0 <= stlb_index(vaddr) < STLB_ENTRIES


class TestMissHandling:
    def test_miss_fills_entry(self):
        m, dom0, svm = make_env()
        svm.handle_miss(0xC0000123)
        tag, xormap = svm.read_entry(stlb_index(0xC0000123))
        assert tag == 0xC0000000
        assert (0xC0000000 ^ xormap) >= HYPERVISOR_BASE

    def test_translation_preserves_offset(self):
        m, dom0, svm = make_env()
        mapped = svm.translate(0xC0000ABC)
        assert mapped & 0xFFF == 0xABC

    def test_mapped_page_aliases_same_frame(self):
        m, dom0, svm = make_env()
        dom0.write_u32(0xC0000040, 0xFEEDFACE)
        mapped = svm.translate(0xC0000040)
        view = AddressSpace("check", m.phys, m.hypervisor_table)
        assert view.read_u32(mapped) == 0xFEEDFACE

    def test_pair_mapping_contiguous(self):
        # footnote 2: two consecutive pages are mapped per miss, so
        # straddling accesses work through one translation
        m, dom0, svm = make_env()
        dom0.write(0xC0000FFE, 4, 0x31415926)
        mapped = svm.translate(0xC0000FFE)
        view = AddressSpace("check", m.phys, m.hypervisor_table)
        assert view.read(mapped, 4) == 0x31415926

    def test_pair_skips_unmapped_neighbour(self):
        m, dom0, svm = make_env()
        # page 7 is the last mapped dom0 page: its neighbour is absent
        svm.handle_miss(0xC0007000)
        assert 0xC0007000 in svm.mappings

    def test_miss_idempotent_via_chain(self):
        m, dom0, svm = make_env()
        a = svm.translate(0xC0000100)
        svm.handle_miss(0xC0000200)    # same page, same index
        assert svm.translate(0xC0000100) == a
        assert len(svm.mappings) == 1

    def test_stats(self):
        m, dom0, svm = make_env()
        svm.translate(0xC0000000)
        svm.translate(0xC0000010)      # chain hit, no new miss
        assert svm.misses == 1


class TestCollisions:
    def test_colliding_pages_chain(self):
        m, dom0, svm = make_env()
        dom0.map_new_pages(0xC1001000, 1)      # index collides with C0001000
        a = svm.translate(0xC0001000)
        b = svm.translate(0xC1001000)          # evicts the table entry
        assert a != b
        # table now holds the second page
        tag, _ = svm.read_entry(stlb_index(0xC0001000))
        assert tag == 0xC1001000
        # the fast path misses on the first page again; the slow path walks
        # the chain (a collision) and refills the entry
        assert svm.lookup_fast(0xC0001000) is None
        svm.handle_miss(0xC0001000)
        assert svm.collisions == 1
        tag, _ = svm.read_entry(stlb_index(0xC0001000))
        assert tag == 0xC0001000
        assert svm.translate(0xC0001000) == a

    def test_fast_lookup_miss_on_eviction(self):
        m, dom0, svm = make_env()
        dom0.map_new_pages(0xC1001000, 1)
        svm.translate(0xC0001000)
        svm.translate(0xC1001000)
        assert svm.lookup_fast(0xC0001000) is None
        assert svm.lookup_fast(0xC1001500) is not None


class TestProtection:
    def test_hypervisor_address_rejected(self):
        m, dom0, svm = make_env()
        with pytest.raises(SvmProtectionFault):
            svm.handle_miss(0xF0300000)
        assert svm.protection_faults == 1

    def test_unmapped_dom0_address_rejected(self):
        m, dom0, svm = make_env()
        with pytest.raises(SvmProtectionFault):
            svm.handle_miss(0xA0000000)

    def test_null_rejected(self):
        m, dom0, svm = make_env()
        with pytest.raises(SvmProtectionFault):
            svm.handle_miss(0x00000044)

    def test_flush_invalidates_table_keeps_mappings(self):
        m, dom0, svm = make_env()
        a = svm.translate(0xC0000000)
        before = svm._next_map
        svm.flush()
        assert svm.lookup_fast(0xC0000000) is None
        # the VA chunk is reused, so the translation is stable and the
        # allocator does not leak a fresh pair per flush cycle
        assert svm.translate(0xC0000000) == a
        assert svm._next_map == before

    def test_flush_reruns_permission_check(self):
        # a page unmapped from dom0 after translation must not survive a
        # flush: the re-translation goes back through _check_permitted
        m, dom0, svm = make_env()
        svm.translate(0xC0003000)
        dom0.unmap_page(0xC0003000)
        svm.flush()
        with pytest.raises(SvmProtectionFault):
            svm.translate(0xC0003000)

    def test_flush_clears_chains_not_just_table(self):
        # the old flush() left the Python chains populated, so translate()
        # kept answering from the stale xormap without any re-check
        m, dom0, svm = make_env()
        svm.translate(0xC0000000)
        svm.flush()
        assert svm.chains == {}


class TestLifetimes:
    """Invalidation, VA reclamation and window exhaustion."""

    def test_invalidate_clears_translation(self):
        m, dom0, svm = make_env()
        svm.translate(0xC0004000)
        svm.invalidate(0xC0004123)          # any address in the page
        assert 0xC0004000 not in svm.chains
        assert 0xC0004000 not in svm.mappings
        assert svm.lookup_fast(0xC0004000) is None

    def test_invalidate_reclaims_pair_for_reuse(self):
        m, dom0, svm = make_env()
        a = svm.translate(0xC0000000) & 0xFFFFF000
        svm.translate(0xC0004000)           # distant page: its own pair
        svm.invalidate(0xC0000000)
        # the freed chunk is recycled for the next distant page
        dom0.map_new_pages(0xC2000000, 1)
        b = svm.translate(0xC2000000) & 0xFFFFF000
        assert b == a
        snap = svm.counters_snapshot()
        assert snap["invalidate"] == 1 and snap["reclaim"] == 1

    def test_invalidate_keeps_chunk_under_neighbour_extension(self):
        # pages mapped back-to-back share VA chunks (the pair of page N
        # already maps page N+1); invalidating one of them must not free
        # VA the other's translation still points into
        m, dom0, svm = make_env()
        svm.translate(0xC0000000)
        svm.translate(0xC0001000)           # extends the first pair
        svm.invalidate(0xC0000000)
        assert svm._free_pairs == []        # nothing reclaimed
        # the extended page still translates correctly
        dom0.write_u32(0xC0001040, 0xCAFED00D)
        view = AddressSpace("check", m.phys, m.hypervisor_table)
        assert view.read_u32(svm.translate(0xC0001040)) == 0xCAFED00D

    def test_no_va_leak_for_repeated_pages(self):
        # re-translating the same page after flushes must not consume new
        # window space (the pre-fix bump allocator leaked a pair per miss)
        m, dom0, svm = make_env()
        svm.translate(0xC0000000)
        grown = svm._next_map
        for _ in range(10):
            svm.flush()
            svm.translate(0xC0000000)
        assert svm._next_map == grown

    def test_window_exhaustion_raises(self):
        m = Machine()
        dom0 = AddressSpace("dom0", m.phys, m.hypervisor_table)
        dom0.map_new_pages(0xC0000000, 8)
        table_addr = 0xF0300000
        for i in range(8):
            m.hypervisor_table.map((table_addr >> 12) + i,
                                   m.phys.allocate_frame())
        svm = SvmManager(m, table_addr, dom0, identity=False,
                         map_base=0xF4000000, name="tiny",
                         map_size=4 * PAGE_SIZE)     # room for two pairs
        svm.translate(0xC0000000)
        svm.translate(0xC0004000)
        dom0.map_new_pages(0xC2000000, 1)
        with pytest.raises(SvmMapExhausted):
            svm.translate(0xC2000000)
        # reclaiming makes room again
        svm.invalidate(0xC0004000)
        assert svm.translate(0xC2000000) is not None

    def test_invalidate_all_resets_window(self):
        m, dom0, svm = make_env()
        svm.translate(0xC0000000)
        svm.translate(0xC0004000)
        svm.invalidate_all()
        assert svm.chains == {} and svm.mappings == {}
        assert svm._next_map == svm.map_base
        # and nothing stays mapped in the hypervisor window
        view = AddressSpace("check", m.phys, m.hypervisor_table)
        from repro.machine import PageFault
        with pytest.raises(PageFault):
            view.read_u32(svm.map_base)

    def test_inject_fault_is_transient(self):
        m, dom0, svm = make_env()
        svm.inject_fault()
        with pytest.raises(SvmProtectionFault):
            svm.translate(0xC0000000)
        assert svm.translate(0xC0000000)    # next attempt succeeds


class TestEmptyTagSentinel:
    def test_fresh_table_is_all_empty(self):
        m, dom0, svm = make_env()
        tag, xormap = svm.read_entry(0)
        assert tag == EMPTY_TAG and xormap == 0
        assert svm.lookup_fast(0xC0000000) is None

    def test_page_zero_hits_fast_path(self):
        # tag 0 is dom0 page 0's *valid* tag; the old `tag == 0` empty
        # sentinel condemned it to a permanent slow-path loop
        m, dom0, svm = make_env()
        dom0.map_new_pages(0x00000000, 1)
        svm.handle_miss(0x00000010)
        misses = svm.misses
        assert svm.lookup_fast(0x00000010) is not None
        assert svm.misses == misses         # served by the fast path


class TestIdentityMode:
    def test_identity_translation(self):
        m, dom0, svm = make_env(identity=True)
        assert svm.translate(0xC0100123) == 0xC0100123
        tag, xormap = svm.read_entry(stlb_index(0xC0100123))
        assert tag == 0xC0100000
        assert xormap == 0

    def test_identity_still_protects(self):
        m, dom0, svm = make_env(identity=True)
        with pytest.raises(SvmProtectionFault):
            svm.handle_miss(0xF0000000)

    def test_identity_creates_no_mappings(self):
        m, dom0, svm = make_env(identity=True)
        svm.translate(0xC0100000)
        assert svm.mappings == {}


class TestSvmView:
    def test_view_reads_dom0_data(self):
        m, dom0, svm = make_env()
        dom0.write_u32(0xC0000500, 777)
        view = SvmView(svm)
        assert view.read_u32(0xC0000500) == 777

    def test_view_writes_visible_in_dom0(self):
        m, dom0, svm = make_env()
        view = SvmView(svm)
        view.write_u32(0xC0000600, 888)
        assert dom0.read_u32(0xC0000600) == 888

    def test_view_bulk_across_pages(self):
        m, dom0, svm = make_env()
        view = SvmView(svm)
        payload = bytes(range(256)) * 20
        view.write_bytes(0xC0000E00, payload)
        assert dom0.read_bytes(0xC0000E00, len(payload)) == payload
        assert view.read_bytes(0xC0000E00, len(payload)) == payload

    def test_view_straddling_u32(self):
        m, dom0, svm = make_env()
        view = SvmView(svm)
        view.write(0xC0001FFE, 4, 0xA1B2C3D4)
        assert dom0.read(0xC0001FFE, 4) == 0xA1B2C3D4

    def test_view_protection(self):
        m, dom0, svm = make_env()
        view = SvmView(svm)
        with pytest.raises(SvmProtectionFault):
            view.read_u32(0xF0300000)

    def test_identity_view(self):
        m, dom0, svm = make_env(identity=True)
        view = SvmView(svm)
        dom0.write_u32(0xC0100020, 1337)
        assert view.read_u32(0xC0100020) == 1337


class TestPropertyTranslation:
    @given(st.integers(0, 8 * PAGE_SIZE - 4))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_offset(self, offset):
        m, dom0, svm = make_env()
        vaddr = 0xC0000000 + offset
        dom0.write(vaddr, 4, offset & 0xFFFFFFFF)
        mapped = svm.translate(vaddr)
        view = AddressSpace("check", m.phys, m.hypervisor_table)
        assert view.read(mapped, 4) == offset & 0xFFFFFFFF
