"""The RTL8139-style driver and device: native lifecycle and fast path."""

import pytest

from repro.drivers import build_rtl8139_program
from repro.drivers.rtl8139 import (
    RTL_HW,
    RTL_RXOFF,
    RTL_RXRING,
    RTL_TXBUF0,
    RTL_TXNEXT,
)
from repro.machine import Machine
from repro.machine.rtl8139 import (
    CR_RE,
    CR_TE,
    ISR_ROK,
    ISR_TOK,
    R_CR,
    R_IMR,
    R_RBSTART,
    R_TSAD0,
    R_TSD0,
    RX_RING_BYTES,
    RX_WRAP_THRESHOLD,
    Rtl8139Device,
    TSD_TOK,
)
from repro.osmodel import Kernel, layout as L
from repro.xen import Hypervisor


@pytest.fixture
def env():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    kernel = Kernel(m, dom0, costs=xen.costs)
    nic = m.add_nic(model="rtl8139")
    module = kernel.load_driver(build_rtl8139_program())
    ndev = kernel.create_netdev_for_nic(nic)
    dom0.aspace.write_u32(ndev.addr + L.NDEV_MEM, nic.mmio.start)
    m.intc.set_dispatcher(lambda irq: kernel.handle_irq(irq))
    return m, kernel, nic, module, ndev


def probe_open(kernel, module, ndev):
    assert kernel.call_driver(module.symbol("rtl8139_probe"),
                              [ndev.addr]) == 0
    assert kernel.call_driver(module.symbol("rtl8139_open"),
                              [ndev.addr]) == 0


class TestDeviceModel:
    def test_tx_slot_roundtrip(self):
        m = Machine()
        nic = m.add_nic(model="rtl8139")
        assert isinstance(nic, Rtl8139Device)
        buf = m.phys.allocate_frame() << 12
        m.phys.write_bytes(buf, b"rtl-packet")
        nic.regs[R_CR] = CR_TE
        nic.regs[R_TSAD0] = buf
        m.wire.keep_payloads = True
        nic.mmio_write(R_TSD0, 4, 10)
        assert m.wire.transmitted == [b"rtl-packet"]
        assert nic.regs[R_TSD0] & TSD_TOK

    def test_rx_ring_records(self):
        m = Machine()
        nic = m.add_nic(model="rtl8139")
        ring = m.phys.allocate_frames(4)[0] << 12
        nic.regs[R_RBSTART] = ring
        nic.regs[R_CR] = CR_RE
        assert nic.receive(b"abcdef")
        header = m.phys.read_u32(ring)
        assert header >> 16 == 6
        assert m.phys.read_bytes(ring + 4, 6) == b"abcdef"
        # record advances 4-byte aligned
        assert nic.regs[0x3C] == (4 + 6 + 3) & ~3

    def test_rx_wraps_near_end(self):
        m = Machine()
        nic = m.add_nic(model="rtl8139")
        ring = m.phys.allocate_frames(4)[0] << 12
        nic.regs[R_RBSTART] = ring
        nic.regs[R_CR] = CR_RE
        nic.regs[0x3C] = RX_WRAP_THRESHOLD - 100   # CBR near the threshold
        nic.regs[0x38] = RX_WRAP_THRESHOLD - 100   # CAPR (ring empty)
        assert nic.receive(b"x" * 200)
        assert nic.regs[0x3C] == 0                  # wrapped

    def test_rx_drop_when_full(self):
        m = Machine()
        nic = m.add_nic(model="rtl8139")
        ring = m.phys.allocate_frames(4)[0] << 12
        nic.regs[R_RBSTART] = ring
        nic.regs[R_CR] = CR_RE
        sent = 0
        while nic.receive(b"y" * 1000):
            sent += 1
        assert sent > 5
        assert nic.stats.rx_dropped_no_desc == 1

    def test_bufe_bit(self):
        m = Machine()
        nic = m.add_nic(model="rtl8139")
        nic.regs[R_RBSTART] = m.phys.allocate_frames(4)[0] << 12
        nic.regs[R_CR] = CR_RE
        assert nic.mmio_read(R_CR, 4) & 0x1        # empty
        nic.receive(b"z" * 50)
        assert not nic.mmio_read(R_CR, 4) & 0x1    # data pending

    def test_isr_write_one_to_clear(self):
        m = Machine()
        nic = m.add_nic(model="rtl8139")
        nic.regs[0x44] = ISR_TOK | ISR_ROK
        nic.mmio_write(0x44, 4, ISR_TOK)
        assert nic.regs[0x44] == ISR_ROK


class TestDriverLifecycle:
    def test_probe_allocates_ring_and_buffers(self, env):
        m, kernel, nic, module, ndev = env
        kernel.call_driver(module.symbol("rtl8139_probe"), [ndev.addr])
        mem = kernel.memory_view()
        adapter = ndev.priv
        assert mem.read_u32(adapter + RTL_RXRING) != 0
        for i in range(4):
            assert mem.read_u32(adapter + RTL_TXBUF0 + 4 * i) != 0
        assert ndev.hard_start_xmit == module.symbol("rtl8139_xmit")

    def test_open_programs_device(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert nic.regs[R_CR] & (CR_TE | CR_RE) == CR_TE | CR_RE
        assert nic.regs[R_IMR] == ISR_TOK | ISR_ROK
        assert nic.regs[R_RBSTART] != 0
        for i in range(4):
            assert nic.regs[R_TSAD0 + 4 * i] != 0

    def test_transmit_copies_and_sends(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        m.wire.keep_payloads = True
        payload = bytes(range(200)) * 5
        assert kernel.tcp_transmit(ndev.addr, len(payload), payload=payload)
        frame = m.wire.transmitted[0]
        assert frame[14:] == payload
        assert frame[6:12] == nic.mac

    def test_transmit_frees_skb_immediately(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        held = kernel.heap.allocated_bytes
        for _ in range(12):
            assert kernel.tcp_transmit(ndev.addr, 800)
        # copying driver: no skbs parked on the hardware
        assert kernel.heap.allocated_bytes == held

    def test_tx_slots_rotate(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        for _ in range(9):
            kernel.tcp_transmit(ndev.addr, 100)
        assert kernel.memory_view().read_u32(ndev.priv + RTL_TXNEXT) == 9

    def test_receive_delivers(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        frame = bytes(nic.mac) + b"\x00" * 6 + b"\x08\x00" + b"w" * 700
        for _ in range(5):
            assert m.wire.inject(nic, frame)
        assert kernel.rx_delivered == 5
        assert kernel.rx_bytes == 5 * 700

    def test_receive_many_wraps_ring(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        frame = bytes(nic.mac) + b"\x00" * 6 + b"\x08\x00" + bytes(1400)
        for _ in range(40):                 # > 16KB of records: wraps
            assert m.wire.inject(nic, frame)
        assert kernel.rx_delivered == 40
        assert kernel.memory_view().read_u32(ndev.priv + RTL_RXOFF) \
            < RX_RING_BYTES

    def test_get_stats(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        kernel.tcp_transmit(ndev.addr, 400)
        kernel.call_driver(module.symbol("rtl8139_get_stats"), [ndev.addr])
        assert ndev.tx_packets == 1
        assert ndev.tx_bytes == 414

    def test_close(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert kernel.call_driver(module.symbol("rtl8139_close"),
                                  [ndev.addr]) == 0
        assert nic.regs[R_CR] == 0
        assert nic.regs[R_IMR] == 0
        assert nic.irq not in kernel.irq_handlers
