"""The e1000 driver binary, run natively: lifecycle, fast path, errors."""

import pytest

from repro.drivers import (
    RX_RING_ENTRIES,
    TX_RING_ENTRIES,
    build_e1000_program,
)
from repro.machine import Machine
from repro.machine.nic import (
    ICR_LSC,
    REG_IMS,
    REG_RCTL,
    REG_RDT,
    REG_STATUS,
    REG_TCTL,
    REG_TDBAL,
    RCTL_EN,
    TCTL_EN,
)
from repro.osmodel import Kernel, layout as L
from repro.xen import Hypervisor


@pytest.fixture
def env():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    kernel = Kernel(m, dom0, costs=xen.costs)
    nic = m.add_nic()
    module = kernel.load_driver(build_e1000_program())
    ndev = kernel.create_netdev_for_nic(nic)
    dom0.aspace.write_u32(ndev.addr + L.NDEV_MEM, nic.mmio.start)
    # route the NIC interrupt straight into the kernel (native model)
    m.intc.set_dispatcher(lambda irq: kernel.handle_irq(irq))
    return m, kernel, nic, module, ndev


def probe_open(kernel, module, ndev):
    assert kernel.call_driver(module.symbol("e1000_probe"), [ndev.addr]) == 0
    assert kernel.call_driver(module.symbol("e1000_open"), [ndev.addr]) == 0


class TestProbe:
    def test_probe_initialises_adapter(self, env):
        m, kernel, nic, module, ndev = env
        kernel.call_driver(module.symbol("e1000_probe"), [ndev.addr])
        mem = kernel.memory_view()
        adapter = ndev.priv
        assert mem.read_u32(adapter + L.ADP_NETDEV) == ndev.addr
        assert mem.read_u32(adapter + L.ADP_TX_COUNT) == TX_RING_ENTRIES
        assert mem.read_u32(adapter + L.ADP_TX_RING) != 0
        assert mem.read_u32(adapter + L.ADP_RX_RING) != 0
        # rings' bus addresses recorded
        assert mem.read_u32(adapter + L.ADP_TX_DMA) == \
            kernel.domain.aspace.translate(mem.read_u32(adapter + L.ADP_TX_RING))

    def test_probe_installs_function_pointers(self, env):
        m, kernel, nic, module, ndev = env
        kernel.call_driver(module.symbol("e1000_probe"), [ndev.addr])
        assert ndev.hard_start_xmit == module.symbol("e1000_xmit_frame")
        mem = kernel.memory_view()
        adapter = ndev.priv
        assert mem.read_u32(adapter + L.ADP_CLEAN_RX) == \
            module.symbol("e1000_clean_rx")
        assert mem.read_u32(adapter + L.ADP_CLEAN_TX) == \
            module.symbol("e1000_clean_tx")

    def test_probe_copies_mac_with_string_op(self, env):
        m, kernel, nic, module, ndev = env
        kernel.call_driver(module.symbol("e1000_probe"), [ndev.addr])
        mem = kernel.memory_view()
        shadow = mem.read_bytes(ndev.priv + L.ADP_MACSHADOW, 6)
        assert shadow == nic.mac

    def test_probe_registers_netdev_and_counts(self, env):
        m, kernel, nic, module, ndev = env
        kernel.call_driver(module.symbol("e1000_probe"), [ndev.addr])
        assert ndev.addr in kernel.netdevs
        mem = kernel.memory_view()
        assert mem.read_u32(module.data_symbols["e1000_probe_count"]) == 1
        assert mem.read_u32(module.data_symbols["e1000_version"]) == 70018

    def test_probe_enables_pci(self, env):
        m, kernel, nic, module, ndev = env
        kernel.call_driver(module.symbol("e1000_probe"), [ndev.addr])
        assert ("enabled", 0) in kernel.pci_state
        assert ("master", 0) in kernel.pci_state


class TestOpen:
    def test_open_programs_rings_and_enables(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert nic.regs[REG_TCTL] & TCTL_EN
        assert nic.regs[REG_RCTL] & RCTL_EN
        assert nic.regs[REG_TDBAL] != 0
        assert nic.regs[REG_IMS] != 0

    def test_open_fills_rx_ring(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert nic.regs[REG_RDT] == RX_RING_ENTRIES - 1
        assert nic.rx_slots_free() == RX_RING_ENTRIES - 1

    def test_open_registers_irq_and_queue(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        handler, arg = kernel.irq_handlers[nic.irq]
        assert handler == module.symbol("e1000_intr")
        assert arg == ndev.addr
        assert not ndev.queue_stopped
        assert ndev.carrier_ok

    def test_open_arms_watchdog(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert len(kernel.timers) == 1


class TestTransmit:
    def test_single_transmit(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert kernel.tcp_transmit(ndev.addr, 900)
        assert m.wire.tx_count == 1
        assert ndev.tx_packets == 1
        assert ndev.tx_bytes == 914

    def test_transmit_payload_on_wire(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        m.wire.keep_payloads = True
        payload = bytes(range(250)) * 4
        kernel.tcp_transmit(ndev.addr, len(payload), payload=payload)
        frame = m.wire.transmitted[0]
        assert frame[14:] == payload
        assert frame[6:12] == nic.mac

    def test_fragmented_skb_transmit(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        m.wire.keep_payloads = True
        skb = kernel.build_tx_skb(kernel.netdev(ndev.addr), 80)
        frag_page_va = kernel.heap.alloc_pages(1)
        kernel.memory_view().write_bytes(frag_page_va, b"F" * 500)
        frag_machine = kernel.domain.aspace.translate(frag_page_va)
        skb.add_frag(frag_machine & ~0xFFF, frag_machine & 0xFFF, 500)
        assert kernel.transmit_skb(skb, kernel.netdev(ndev.addr))
        frame = m.wire.transmitted[0]
        assert len(frame) == 14 + 80 + 500
        assert frame[-500:] == b"F" * 500

    def test_tx_cleaning_frees_skbs(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        held = kernel.heap.allocated_bytes
        for _ in range(10):
            assert kernel.tcp_transmit(ndev.addr, 500)
        nic.flush_interrupts()
        # all tx skbs freed by clean_tx via the TXDW interrupt
        assert kernel.heap.allocated_bytes == held

    def test_ring_full_stops_queue_and_returns_busy(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        nic.mmio_write(REG_IMS, 4, 0)   # mask: no cleaning interrupts
        nic.regs[REG_TCTL] = 0          # device stops consuming
        sent = 0
        for _ in range(TX_RING_ENTRIES + 8):
            if not kernel.tcp_transmit(ndev.addr, 200):
                break
            sent += 1
        assert sent == TX_RING_ENTRIES - 1
        assert kernel.netdev(ndev.addr).queue_stopped
        assert kernel.tx_dropped >= 1

    def test_xmit_calls_counter(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        for _ in range(3):
            kernel.tcp_transmit(ndev.addr, 100)
        assert kernel.memory_view().read_u32(
            module.data_symbols["e1000_xmit_calls"]) == 3


class TestReceive:
    def frame_for(self, nic, n=600):
        return bytes(nic.mac) + b"\x00" * 6 + b"\x08\x00" + bytes(n)

    def test_receive_delivers_to_stack(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert m.wire.inject(nic, self.frame_for(nic))
        assert kernel.rx_delivered == 1
        assert kernel.rx_bytes == 600   # payload after the pulled header

    def test_receive_refills_ring(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        for _ in range(20):
            assert m.wire.inject(nic, self.frame_for(nic))
        assert nic.rx_slots_free() == RX_RING_ENTRIES - 1
        assert kernel.rx_delivered == 20

    def test_receive_updates_stats(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        m.wire.inject(nic, self.frame_for(nic))
        mem = kernel.memory_view()
        assert mem.read_u32(ndev.priv + L.ADP_RXP) == 1
        assert ndev.rx_packets == 1
        assert mem.read_u32(module.data_symbols["e1000_intr_count"]) >= 1

    def test_burst_with_coalesced_interrupts(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        nic.interrupt_batch = 8
        for _ in range(32):
            assert m.wire.inject(nic, self.frame_for(nic))
        nic.flush_interrupts()
        assert kernel.rx_delivered == 32


class TestManagement:
    def test_get_stats_publishes(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        kernel.tcp_transmit(ndev.addr, 300)
        stats_ptr = kernel.call_driver(module.symbol("e1000_get_stats"),
                                       [ndev.addr])
        assert stats_ptr == ndev.addr + L.NDEV_TX_PKTS
        assert ndev.tx_packets == 1

    def test_set_mac(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        new_mac = b"\x02\xAB\xCD\xEF\x00\x01"
        buf = kernel.heap.alloc(8)
        kernel.memory_view().write_bytes(buf, new_mac)
        r = kernel.call_driver(module.symbol("e1000_set_mac"),
                               [ndev.addr, buf])
        assert r == 0
        assert ndev.mac == new_mac
        assert kernel.memory_view().read_bytes(
            ndev.priv + L.ADP_MACSHADOW, 6) == new_mac

    def test_change_mtu_validation(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        call = kernel.call_driver
        assert call(module.symbol("e1000_change_mtu"), [ndev.addr, 1400]) == 0
        assert ndev.mtu == 1400
        assert call(module.symbol("e1000_change_mtu"), [ndev.addr, 40]) == 1
        assert call(module.symbol("e1000_change_mtu"), [ndev.addr, 9000]) == 1
        assert ndev.mtu == 1400

    def test_ethtool_get_link(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        assert kernel.call_driver(module.symbol("e1000_ethtool_get_link"),
                                  [ndev.addr]) == 1

    def test_watchdog_rearms_and_checks_link(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        adapter = ndev.priv
        kernel.advance_jiffies(10)
        fired = kernel.run_due_timers()
        assert fired == 1
        assert kernel.memory_view().read_u32(adapter + L.ADP_LINK) == 1
        # re-armed
        assert len(kernel.timers) == 1

    def test_watchdog_detects_tx_hang(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        mem = kernel.memory_view()
        adapter = ndev.priv
        # simulate a stuck ring: pending work, clean index frozen
        mem.write_u32(adapter + L.ADP_TX_NEXT, 5)
        mem.write_u32(adapter + L.ADP_TX_CLEAN, 2)
        mem.write_u32(adapter + L.ADP_TX_HANG, 2)
        kernel.advance_jiffies(10)
        kernel.run_due_timers()
        assert mem.read_u32(
            module.data_symbols["e1000_tx_timeout_count"]) == 1

    def test_close_tears_down(self, env):
        m, kernel, nic, module, ndev = env
        probe_open(kernel, module, ndev)
        kernel.tcp_transmit(ndev.addr, 100)
        nic.flush_interrupts()
        r = kernel.call_driver(module.symbol("e1000_close"), [ndev.addr])
        assert r == 0
        assert nic.regs[REG_TCTL] == 0
        assert nic.regs[REG_RCTL] == 0
        assert nic.regs[REG_IMS] == 0
        assert nic.irq not in kernel.irq_handlers
        assert kernel.timers == []
        assert kernel.netdev(ndev.addr).queue_stopped

    def test_close_releases_rx_skbs(self, env):
        m, kernel, nic, module, ndev = env
        held_before_open = kernel.heap.allocated_bytes
        probe_open(kernel, module, ndev)
        kernel.call_driver(module.symbol("e1000_close"), [ndev.addr])
        # rings + arrays + timer freed; rx skbs returned
        leak = kernel.heap.allocated_bytes - held_before_open
        # only the watchdog timer struct (kmalloc'd, freed? kept) and
        # adapter-internal allocations may remain; rx skbs must not leak:
        assert leak < 64 * 100     # far less than 63 skbs x 2KB
