"""Differential fuzzing: interpreter vs superblock JIT (ISSUE 8).

Every generated program is run on two fresh machines — ``jit_enabled``
off and on (threshold 1, so traces compile immediately) — over several
invocations, and the complete observable state must be bit-identical:
registers, flags, direction flag, ``executed``, every per-category
cycle counter, and the data pages. Separate properties drive natives,
native-raised exceptions (the upcall shape), and page faults through
the middle of hot superblocks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.machine import AddressSpace, Machine, PageFault

DATA = 0xC0000000
STACK_TOP = 0xC0104000
BASE = 0x08000000
DATA_BYTES = 4 * 4096

#: body registers; %ebx is the data base, %edi the loop counter
_REGS = ["eax", "ecx", "edx", "esi"]
_ALU = ["addl", "subl", "andl", "orl", "xorl"]
_UNARY = ["incl", "decl", "negl", "notl"]
_JCC = ["je", "jne", "jl", "jg", "jle", "jge", "jb", "ja", "js", "jns"]

_imm = st.integers(-(2 ** 31), 2 ** 31 - 1)
_off = st.integers(0, (DATA_BYTES // 4) - 1).map(lambda i: i * 4)

_instr = st.one_of(
    st.tuples(st.just("movimm"), st.sampled_from(_REGS), _imm),
    st.tuples(st.just("movreg"), st.sampled_from(_REGS),
              st.sampled_from(_REGS)),
    st.tuples(st.sampled_from(_ALU), st.sampled_from(_REGS), _imm),
    st.tuples(st.just("alureg"), st.sampled_from(_ALU),
              st.sampled_from(_REGS), st.sampled_from(_REGS)),
    st.tuples(st.sampled_from(["shll", "shrl", "sarl"]),
              st.sampled_from(_REGS), st.integers(0, 31)),
    st.tuples(st.sampled_from(_UNARY), st.sampled_from(_REGS)),
    st.tuples(st.just("load"), st.sampled_from(_REGS), _off),
    st.tuples(st.just("store"), st.sampled_from(_REGS), _off),
)

_block = st.lists(_instr, min_size=1, max_size=4)

#: (blocks, guards, loop iterations): guard i optionally jumps forward
#: over block i+1, giving the trace compiler real side exits
_programs = st.tuples(
    st.lists(_block, min_size=1, max_size=3),
    st.lists(st.one_of(
        st.none(),
        st.tuples(st.sampled_from(_JCC), st.sampled_from(_REGS), _imm),
    ), min_size=3, max_size=3),
    st.integers(2, 6),
)


def _render(op) -> str:
    kind = op[0]
    if kind == "movimm":
        return f"    movl ${op[2]}, %{op[1]}"
    if kind == "movreg":
        return f"    movl %{op[1]}, %{op[2]}"
    if kind == "alureg":
        return f"    {op[1]} %{op[2]}, %{op[3]}"
    if kind in _UNARY:
        return f"    {kind} %{op[1]}"
    if kind in ("shll", "shrl", "sarl"):
        return f"    {kind} ${op[2]}, %{op[1]}"
    if kind == "load":
        return f"    movl {op[2]}(%ebx), %{op[1]}"
    if kind == "store":
        return f"    movl %{op[1]}, {op[2]}(%ebx)"
    return f"    {kind} ${op[2]}, %{op[1]}"


def _build_source(blocks, guards, iters, extra="") -> str:
    lines = [".globl f", "f:", f"    movl $3735928559, %eax",
             f"    movl ${iters}, %edi", "loop:"]
    for i, block in enumerate(blocks):
        lines.extend(_render(op) for op in block)
        guard = guards[i] if i < len(guards) else None
        if guard is not None and i + 1 < len(blocks):
            jcc, reg, imm = guard
            lines.append(f"    cmpl ${imm}, %{reg}")
            lines.append(f"    {jcc} G{i}")
            lines.extend(_render(op) for op in blocks[i + 1])
            lines.append(f"G{i}:")
    if extra:
        lines.append(extra)
    lines += ["    decl %edi", "    cmpl $0, %edi", "    jne loop",
              "    ret"]
    return "\n".join(lines) + "\n"


def _make_machine(jit):
    m = Machine()
    space = AddressSpace("fuzz", m.phys, m.hypervisor_table)
    space.map_new_pages(DATA, 4)
    space.map_new_pages(0xC0100000, 4)
    m.cpu.address_space = space
    m.cpu.jit_enabled = jit
    m.cpu.jit_threshold = 1
    return m, space


def _observe(m, space, results, errors):
    return (results, errors, dict(m.cpu.regs), dict(m.cpu.flags),
            m.cpu.df, m.cpu.executed, m.account.cycles,
            space.read_bytes(DATA, DATA_BYTES))


def _run_one(source, jit, natives=None, calls=4):
    m, space = _make_machine(jit)
    extern = {}
    if natives:
        for name, factory in natives:
            m.register_native(name, factory(m))
            extern[name] = m.natives.address_of(name)
    loaded = m.load_program(assemble(source), BASE, extern=extern or None)
    m.cpu.regs["ebx"] = DATA
    results, errors = [], []
    for _ in range(calls):
        try:
            results.append(m.cpu.call_function(
                loaded.symbol("f"), [], stack_top=STACK_TOP))
        except Exception as exc:  # noqa: BLE001 - compared structurally
            errors.append((type(exc).__name__, str(exc)))
        m.cpu.regs["ebx"] = DATA        # a body store may have hit it
    cycles = m.account.cycles
    return (results, errors, dict(m.cpu.regs), dict(m.cpu.flags),
            m.cpu.df, m.cpu.executed, cycles,
            space.read_bytes(DATA, DATA_BYTES))


@settings(max_examples=40, deadline=None)
@given(_programs)
def test_alu_memory_loops_bit_identical(spec):
    blocks, guards, iters = spec
    source = _build_source(blocks, guards, iters)
    assert _run_one(source, False) == _run_one(source, True)


@settings(max_examples=20, deadline=None)
@given(_programs, st.integers(0, 0xFFFF))
def test_native_calls_mid_superblock(spec, salt):
    blocks, guards, iters = spec
    source = _build_source(
        blocks, guards, iters,
        extra="    pushl %ecx\n    call mix\n    addl $4, %esp")

    def mix_factory(m):
        def mix(cpu):
            return (cpu.read_stack_arg(0) ^ salt) & 0xFFFFFFFF
        return mix

    natives = [("mix", mix_factory)]
    assert (_run_one(source, False, natives)
            == _run_one(source, True, natives))


@settings(max_examples=20, deadline=None)
@given(_programs, st.integers(1, 8))
def test_native_raises_mid_superblock(spec, boom_at):
    # the upcall shape: a native raising out of the middle of a hot
    # trace must leave identical precise state in both modes
    class Boom(Exception):
        pass

    blocks, guards, iters = spec
    source = _build_source(blocks, guards, iters,
                           extra="    call maybe")

    def maybe_factory(m):
        state = {"n": 0}

        def maybe(cpu):
            state["n"] += 1
            if state["n"] == boom_at:
                raise Boom(f"at call {boom_at}")
            return None
        return maybe

    natives = [("maybe", maybe_factory)]
    assert (_run_one(source, False, natives)
            == _run_one(source, True, natives))


@settings(max_examples=20, deadline=None)
@given(_programs, st.integers(0, 3))
def test_fault_mid_superblock(spec, bad_call):
    # one invocation points the data base at an unmapped page: the
    # PageFault must surface at the same instruction, same cycles
    blocks, guards, iters = spec
    source = _build_source(blocks, guards, iters,
                           extra="    movl 0(%ebx), %esi")

    def run(jit):
        m, space = _make_machine(jit)
        loaded = m.load_program(assemble(source), BASE)
        results, errors = [], []
        for i in range(4):
            m.cpu.regs["ebx"] = 0x40000000 if i == bad_call else DATA
            try:
                results.append(m.cpu.call_function(
                    loaded.symbol("f"), [], stack_top=STACK_TOP))
            except PageFault as exc:
                errors.append(str(exc))
        return _observe(m, space, results, errors)

    off, on = run(False), run(True)
    assert off == on
    assert off[1]                       # the fault actually fired
