"""Superblock trace JIT (ISSUE 8): formation, side exits, invalidation.

The contract under test: with ``jit_enabled`` the interpreter's
*observable* behaviour — registers, flags, memory, ``executed``, and
every per-category cycle counter — is bit-identical to ``step()``;
only host wall time changes. Plus the three ISSUE 8 bugfixes:
instrument hooks on warm code, charge-shadow layering (the dispatcher
side), and ``_prog_cache`` staleness across a mid-run reload.
"""

import pytest

from repro.isa import assemble
from repro.machine import AddressSpace, Machine, PageFault

DATA = 0xC0000000
STACK_TOP = 0xC0104000
BASE = 0x08000000

LOOP_SRC = """
.globl f
f: movl $0, %eax
   movl $0, %ecx
loop:
   movl (%ebx,%ecx,4), %edx
   addl %edx, %eax
   incl %ecx
   cmpl $16, %ecx
   jne loop
   shll $1, %eax
   ret
"""


def make_machine(jit=False, threshold=2):
    m = Machine()
    space = AddressSpace("test", m.phys, m.hypervisor_table)
    space.map_new_pages(DATA, 4)
    space.map_new_pages(0xC0100000, 4)
    m.cpu.address_space = space
    m.cpu.jit_enabled = jit
    m.cpu.jit_threshold = threshold
    return m, space


def machine_state(m):
    return (dict(m.cpu.regs), dict(m.cpu.flags), m.cpu.df,
            m.cpu.executed, m.account.cycles)


def run_both(source, calls=1, args=(), setup=None, threshold=2):
    """Run ``source`` on two fresh machines (interp vs JIT) and assert
    the full observable state matches; returns (results, jit machine)."""
    outs = []
    machines = []
    for jit in (False, True):
        m, space = make_machine(jit=jit, threshold=threshold)
        program = assemble(source)
        loaded = m.load_linked_program(program, BASE)
        if setup:
            setup(m, space, loaded)
        results = [m.cpu.call_function(loaded.symbol("f"), list(args),
                                       stack_top=STACK_TOP)
                   for _ in range(calls)]
        outs.append((results, machine_state(m)))
        machines.append(m)
    assert outs[0] == outs[1]
    return outs[1][0], machines[1]


class TestSuperblockFormation:
    def test_hot_loop_is_promoted_and_matches_interpreter(self):
        def fill(m, space, loaded):
            for i in range(16):
                space.write(DATA + 4 * i, 4, i)
            m.cpu.regs["ebx"] = DATA

        results, m = run_both(LOOP_SRC, calls=8, setup=fill)
        assert results[-1] == 2 * sum(range(16))
        stats = m.cpu.jit_stats()
        assert stats["compiles"] >= 1
        assert stats["entries"] >= 1

    def test_cold_code_never_compiles(self):
        src = ".globl f\nf: movl $3, %eax\nret"
        results, m = run_both(src, calls=1, threshold=50)
        assert results == [3]
        assert m.cpu.jit_stats()["compiles"] == 0

    def test_jit_off_by_default(self):
        m = Machine()
        assert m.cpu.jit_enabled is False

    def test_side_exit_when_branch_flips(self):
        # the trace is laid out for the warm-up iteration count; calls
        # with a different count must side-exit mid-superblock with
        # registers, flags, and cycles exactly as step() leaves them
        src = """
.globl f
f: movl 4(%esp), %ecx
   movl $0, %eax
loop:
   addl %ecx, %eax
   decl %ecx
   cmpl $0, %ecx
   jne loop
   ret
"""
        for n in (9, 1, 30, 2):
            expected = sum(range(1, n + 1))
            outs = []
            for jit in (False, True):
                m, _ = make_machine(jit=jit)
                loaded = m.load_linked_program(assemble(src), BASE)
                for _ in range(6):       # warm with n=9 shape
                    m.cpu.call_function(loaded.symbol("f"), [9],
                                        stack_top=STACK_TOP)
                r = m.cpu.call_function(loaded.symbol("f"), [n],
                                        stack_top=STACK_TOP)
                outs.append((r, machine_state(m)))
            assert outs[0] == outs[1]
            assert outs[1][0] == expected

    def test_fault_mid_superblock_leaves_precise_state(self):
        # the second call points the load at an unmapped page: the
        # fault must surface at the same instruction with identical
        # cycles charged in both modes
        src = """
.globl f
f: movl $0, %eax
   movl $0, %ecx
loop:
   addl (%ebx,%ecx,4), %eax
   incl %ecx
   cmpl $8, %ecx
   jne loop
   ret
"""
        outs = []
        for jit in (False, True):
            m, space = make_machine(jit=jit)
            loaded = m.load_linked_program(assemble(src), BASE)
            m.cpu.regs["ebx"] = DATA
            for _ in range(6):
                m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            m.cpu.regs["ebx"] = 0x40000000        # unmapped
            with pytest.raises(PageFault):
                m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            outs.append(machine_state(m))
        assert outs[0] == outs[1]


class TestDispatcherGuards:
    def test_profiler_shadow_bypasses_superblocks_exactly(self):
        # with a charge shadow installed the dispatcher must fall back
        # to step() so per-charge attribution stays per-instruction
        m, space = make_machine(jit=True)
        loaded = m.load_linked_program(assemble(LOOP_SRC), BASE)
        for i in range(16):
            space.write(DATA + 4 * i, 4, i)
        m.cpu.regs["ebx"] = DATA
        for _ in range(6):
            m.cpu.call_function(loaded.symbol("f"), [],
                                stack_top=STACK_TOP)
        entries_before = m.cpu.jit_stats()["entries"]
        prof = m.obs.profiler
        prof.enable()
        before = m.account.snapshot()
        m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)
        moved = m.account.delta_since(before)
        prof.disable()
        assert m.cpu.jit_stats()["entries"] == entries_before
        assert prof.category_totals() == {
            c: n for c, n in moved.items() if n}

    def test_cycle_scale_change_recompiles_not_reuses(self):
        # superblocks bake pre-scaled per-charge constants; a scale
        # change must not reuse them
        outs = []
        for jit in (False, True):
            m, space = make_machine(jit=jit)
            loaded = m.load_linked_program(assemble(LOOP_SRC), BASE)
            for i in range(16):
                space.write(DATA + 4 * i, 4, i)
            m.cpu.regs["ebx"] = DATA
            for _ in range(6):
                m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            m.cpu.cycle_scale = 0.5
            before = m.account.snapshot()
            r = m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            outs.append((r, m.account.delta_since(before)))
        assert outs[0] == outs[1]


class TestInstrumentHooks:
    """ISSUE 8 satellite: hooks registered after warm-up must fire."""

    SRC = ".globl f\nf: movl $5, %eax\naddl $1, %eax\nret"

    @pytest.mark.parametrize("jit", [False, True])
    def test_hook_added_on_warm_code_fires(self, jit):
        m, _ = make_machine(jit=jit)
        loaded = m.load_linked_program(assemble(self.SRC), BASE)
        for _ in range(6):                        # warm: handlers cached
            assert m.cpu.call_function(loaded.symbol("f"), [],
                                       stack_top=STACK_TOP) == 6
        hits = []
        loaded.instrument[1] = lambda cpu: hits.append(cpu.eip)
        for _ in range(4):
            assert m.cpu.call_function(loaded.symbol("f"), [],
                                       stack_top=STACK_TOP) == 6
        assert len(hits) == 4

    @pytest.mark.parametrize("jit", [False, True])
    def test_hook_removal_stops_firing(self, jit):
        m, _ = make_machine(jit=jit)
        loaded = m.load_linked_program(assemble(self.SRC), BASE)
        hits = []
        loaded.instrument[1] = lambda cpu: hits.append(cpu.eip)
        for _ in range(6):
            m.cpu.call_function(loaded.symbol("f"), [],
                                stack_top=STACK_TOP)
        assert len(hits) == 6
        del loaded.instrument[1]
        for _ in range(4):
            m.cpu.call_function(loaded.symbol("f"), [],
                                stack_top=STACK_TOP)
        assert len(hits) == 6

    def test_hook_change_invalidates_superblocks(self):
        m, space = make_machine(jit=True)
        loaded = m.load_linked_program(assemble(LOOP_SRC), BASE)
        for i in range(16):
            space.write(DATA + 4 * i, 4, i)
        m.cpu.regs["ebx"] = DATA
        for _ in range(6):
            m.cpu.call_function(loaded.symbol("f"), [],
                                stack_top=STACK_TOP)
        assert m.cpu.jit_stats()["superblocks"] >= 1
        loaded.instrument[2] = lambda cpu: None
        assert m.cpu.jit_stats()["superblocks"] == 0

    def test_hook_does_not_perturb_cycles(self):
        outs = []
        for jit in (False, True):
            m, _ = make_machine(jit=jit)
            loaded = m.load_linked_program(assemble(self.SRC), BASE)
            for _ in range(6):
                m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            loaded.instrument[1] = lambda cpu: None
            before = m.account.snapshot()
            for _ in range(4):
                m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            outs.append(m.account.delta_since(before))
        assert outs[0] == outs[1]


class TestReloadInvalidation:
    """ISSUE 8 satellite: ``_prog_cache`` and superblocks across
    recovery reload (unregister + reload at the same base)."""

    V1 = ".globl f\nf: call swap\nmovl $1, %eax\nret"
    V2 = ".globl f\nf: call swap\nmovl $2, %eax\nret"

    @pytest.mark.parametrize("jit", [False, True])
    def test_mid_run_reload_executes_new_program(self, jit):
        m, _ = make_machine(jit=jit)
        state = {"armed": False}

        def swap(cpu):
            if not state["armed"]:
                return None
            state["armed"] = False
            m.code.unregister(state["loaded"])
            state["loaded"] = m.load_program(
                assemble(self.V2), BASE,
                extern={"swap": m.natives.address_of("swap")})
            return None

        m.register_native("swap", swap)
        state["loaded"] = m.load_program(
            assemble(self.V1), BASE,
            extern={"swap": m.natives.address_of("swap")})
        f = state["loaded"].symbol("f")
        for _ in range(6):                        # warm the v1 binary
            assert m.cpu.call_function(f, [], stack_top=STACK_TOP) == 1
        state["armed"] = True
        # the reload happens *inside* this call: the very next fetch
        # after the native returns must execute v2's instructions
        assert m.cpu.call_function(f, [], stack_top=STACK_TOP) == 2
        assert m.cpu.call_function(f, [], stack_top=STACK_TOP) == 2

    def test_reregister_resets_superblocks(self):
        m, space = make_machine(jit=True)
        loaded = m.load_linked_program(assemble(LOOP_SRC), BASE)
        for i in range(16):
            space.write(DATA + 4 * i, 4, i)
        m.cpu.regs["ebx"] = DATA
        for _ in range(6):
            m.cpu.call_function(loaded.symbol("f"), [],
                                stack_top=STACK_TOP)
        assert m.cpu.jit_stats()["superblocks"] >= 1
        # recovery re-verification reloads the same binary: epoch bumps
        m.code.unregister(loaded)
        m.code.register(loaded)
        before = m.account.snapshot()
        r = m.cpu.call_function(loaded.symbol("f"), [],
                                stack_top=STACK_TOP)
        assert r == 2 * sum(range(16))
        # the stale superblocks were dropped, then the head re-promoted
        # against the new epoch
        m2, space2 = make_machine(jit=False)
        loaded2 = m2.load_linked_program(assemble(LOOP_SRC), BASE)
        for i in range(16):
            space2.write(DATA + 4 * i, 4, i)
        m2.cpu.regs["ebx"] = DATA
        for _ in range(6):
            m2.cpu.call_function(loaded2.symbol("f"), [],
                                 stack_top=STACK_TOP)
        before2 = m2.account.snapshot()
        m2.cpu.call_function(loaded2.symbol("f"), [], stack_top=STACK_TOP)
        assert m.account.delta_since(before) == m2.account.delta_since(
            before2)


class TestNativesMidTrace:
    def test_native_call_inside_hot_loop(self):
        calls = []

        src = """
.globl f
f: movl $0, %eax
   movl $5, %ecx
loop:
   pushl %ecx
   call tally
   addl $4, %esp
   addl %ecx, %eax
   decl %ecx
   cmpl $0, %ecx
   jne loop
   ret
"""
        outs = []
        for jit in (False, True):
            calls.clear()
            m, _ = make_machine(jit=jit)
            m.register_native("tally",
                              lambda cpu: calls.append(
                                  cpu.read_stack_arg(0)))
            loaded = m.load_program(
                assemble(src), BASE,
                extern={"tally": m.natives.address_of("tally")})
            for _ in range(6):
                r = m.cpu.call_function(loaded.symbol("f"), [],
                                        stack_top=STACK_TOP)
            outs.append((r, list(calls), machine_state(m)))
        assert outs[0] == outs[1]
        assert outs[1][0] == sum(range(1, 6))

    def test_native_raising_mid_superblock(self):
        class Boom(Exception):
            pass

        src = """
.globl f
f: movl $0, %eax
   movl $4, %ecx
loop:
   call maybe_boom
   addl %ecx, %eax
   decl %ecx
   cmpl $0, %ecx
   jne loop
   ret
"""
        outs = []
        for jit in (False, True):
            m, _ = make_machine(jit=jit)
            armed = {"on": False}

            def maybe_boom(cpu):
                if armed["on"]:
                    raise Boom()
                return None

            m.register_native("maybe_boom", maybe_boom)
            loaded = m.load_program(
                assemble(src), BASE,
                extern={"maybe_boom": m.natives.address_of("maybe_boom")})
            for _ in range(6):
                m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            armed["on"] = True
            with pytest.raises(Boom):
                m.cpu.call_function(loaded.symbol("f"), [],
                                    stack_top=STACK_TOP)
            outs.append(machine_state(m))
        assert outs[0] == outs[1]
