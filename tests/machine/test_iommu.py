"""IOMMU DMA protection (paper §4.5 extension): windows, faults, and the
end-to-end behaviour with the real driver and the TwinDrivers path."""

import pytest

from repro.configs import build
from repro.machine import Iommu, IommuFault, Machine
from repro.machine.nic import (
    DESC_EOP,
    DESC_SIZE,
    REG_TCTL,
    REG_TDBAL,
    REG_TDLEN,
    REG_TDT,
    TCTL_EN,
)


class TestIommuUnit:
    def test_access_without_window_faults(self):
        iommu = Iommu()
        with pytest.raises(IommuFault):
            iommu.check("eth0", 0x1000, 4, write=False)
        assert iommu.faults == 1

    def test_window_allows_exact_range(self):
        iommu = Iommu()
        iommu.map_window("eth0", 0x1000, 0x100)
        iommu.check("eth0", 0x1000, 0x100, write=True)
        iommu.check("eth0", 0x1080, 4, write=False)
        with pytest.raises(IommuFault):
            iommu.check("eth0", 0x10FE, 4, write=False)   # straddles out

    def test_wildcard_domain(self):
        iommu = Iommu()
        iommu.map_window("*", 0x2000, 0x1000)
        iommu.check("eth3", 0x2800, 8, write=True)

    def test_per_device_isolation(self):
        iommu = Iommu()
        iommu.map_window("eth0", 0x1000, 0x100)
        with pytest.raises(IommuFault):
            iommu.check("eth1", 0x1000, 4, write=False)

    def test_unmap_revokes(self):
        iommu = Iommu()
        iommu.map_window("eth0", 0x1000, 0x100)
        assert iommu.unmap_window("eth0", 0x1000, 0x100)
        with pytest.raises(IommuFault):
            iommu.check("eth0", 0x1000, 4, write=False)

    def test_unmap_unknown_returns_false(self):
        iommu = Iommu()
        assert not iommu.unmap_window("eth0", 0x9999, 4)

    def test_reset_device(self):
        iommu = Iommu()
        iommu.map_window("eth0", 0x1000, 0x100)
        iommu.reset_device("eth0")
        assert iommu.windows_of("eth0") == ()


class TestDeviceEnforcement:
    def test_rogue_descriptor_blocked(self):
        """A wild bus address written into a tx descriptor must not leak
        memory contents onto the wire."""
        m = Machine()
        nic = m.add_nic()
        iommu = m.attach_iommu()
        ring = m.phys.allocate_frame() << 12
        secret = m.phys.allocate_frame() << 12
        m.phys.write_bytes(secret, b"SECRETS!")
        # only the ring itself is windowed; the secret frame is not
        iommu.map_window("*", ring, 0x1000)
        nic.mmio_write(REG_TDBAL, 4, ring)
        nic.mmio_write(REG_TDLEN, 4, 8 * DESC_SIZE)
        nic.mmio_write(REG_TCTL, 4, TCTL_EN)
        m.phys.write_u32(ring + 0, secret)            # rogue address
        m.phys.write_u32(ring + 8, 8)
        m.phys.write_u32(ring + 12, DESC_EOP)
        m.wire.keep_payloads = True
        nic.mmio_write(REG_TDT, 4, 1)
        assert m.wire.transmitted == []
        assert nic.stats.dma_faults == 1

    def test_rogue_rx_buffer_blocked(self):
        m = Machine()
        nic = m.add_nic()
        iommu = m.attach_iommu()
        ring = m.phys.allocate_frame() << 12
        target = m.phys.allocate_frame() << 12
        iommu.map_window("*", ring, 0x1000)
        from repro.machine.nic import RCTL_EN, REG_RCTL, REG_RDBAL, \
            REG_RDLEN, REG_RDT
        nic.mmio_write(REG_RDBAL, 4, ring)
        nic.mmio_write(REG_RDLEN, 4, 8 * DESC_SIZE)
        nic.mmio_write(REG_RCTL, 4, RCTL_EN)
        m.phys.write_u32(ring + 0, target)            # not windowed
        nic.mmio_write(REG_RDT, 4, 1)
        before = m.phys.read_bytes(target, 8)
        assert not nic.receive(b"payload-x")
        assert m.phys.read_bytes(target, 8) == before
        assert nic.stats.dma_faults == 1


class TestEndToEndWithIommu:
    @pytest.mark.parametrize("name", ["linux", "dom0", "domU", "domU-twin"])
    def test_traffic_flows_with_protection_on(self, name):
        system = build(name, n_nics=1, iommu=True)
        assert system.transmit_packets(32) == 32
        assert system.receive_packets(32) == 32
        assert all(nic.stats.dma_faults == 0 for nic in system.nics)
        assert system.machine.iommu.checks > 0

    def test_windows_balance_in_steady_state(self):
        system = build("domU-twin", n_nics=1, iommu=True)
        system.transmit_packets(64)
        system.receive_packets(64)
        windows = system.machine.iommu.windows_of("*")
        # rings (2/NIC) + rx-ring buffers (~63) stay mapped; tx buffers
        # come and go. Bound: no unbounded leak.
        assert len(windows) < 80
