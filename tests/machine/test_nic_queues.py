"""Multiqueue NIC facade: RSS flow hash and per-queue statistics."""

import pytest

from repro.machine import Machine
from repro.machine.nic import (
    DESC_EOP,
    DESC_SIZE,
    RCTL_EN,
    REG_RCTL,
    REG_RDBAL,
    REG_RDLEN,
    REG_RDT,
    REG_TCTL,
    REG_TDBAL,
    REG_TDLEN,
    REG_TDT,
    TCTL_EN,
    RSS_HASH_BYTES,
    flow_hash,
)


def frame_for(dst, src=b"\x00\x22\x33\x44\x55\x66", payload=b"x" * 60):
    return dst + src + (0x0800).to_bytes(2, "big") + payload


class TestFlowHash:
    def test_deterministic_known_value(self):
        # FNV-1a over b"abc" — a fixed reference so the hash can never
        # silently change (queue placement is part of the determinism
        # contract)
        assert flow_hash(b"abc") == 0x1A47E90B

    def test_same_headers_same_hash(self):
        f1 = frame_for(b"\x00\x16\x3e\x00\x00\x01",
                       payload=b"x" * 20 + b"a" * 40)
        f2 = frame_for(b"\x00\x16\x3e\x00\x00\x01",
                       payload=b"x" * 20 + b"b" * 480)
        # only the first RSS_HASH_BYTES matter: same flow, same queue
        assert f1[:RSS_HASH_BYTES] == f2[:RSS_HASH_BYTES]
        assert flow_hash(f1) == flow_hash(f2)

    def test_different_flows_spread(self):
        hashes = {flow_hash(frame_for(bytes(5) + bytes([i])))
                  for i in range(64)}
        assert len(hashes) == 64
        queues = {h % 4 for h in hashes}
        assert queues == {0, 1, 2, 3}


def write_desc(phys, base, index, addr, length, flags):
    d = base + index * DESC_SIZE
    phys.write_u32(d + 0, addr)
    phys.write_u32(d + 8, length)
    phys.write_u32(d + 12, flags)


class TestE1000Queues:
    def make_nic(self, num_queues=4):
        m = Machine()
        nic = m.add_nic(num_queues=num_queues)
        return m, nic

    def setup_rx(self, m, nic, entries=16, fill=8):
        ring = m.phys.allocate_frame() << 12
        nic.mmio_write(REG_RDBAL, 4, ring)
        nic.mmio_write(REG_RDLEN, 4, entries * DESC_SIZE)
        nic.mmio_write(REG_RCTL, 4, RCTL_EN)
        for i in range(fill):
            buf = m.phys.allocate_frame() << 12
            write_desc(m.phys, ring, i, buf, 0, 0)
        nic.mmio_write(REG_RDT, 4, fill)

    def test_default_is_single_queue(self):
        m, nic = self.make_nic(num_queues=1)
        assert nic.num_queues == 1
        assert len(nic.queues) == 1
        assert nic.rss_queue(frame_for(b"\x00\x16\x3e\x00\x00\x07")) == 0

    def test_set_num_queues_rejects_zero(self):
        m, nic = self.make_nic(num_queues=1)
        with pytest.raises(ValueError):
            nic.set_num_queues(0)

    def test_rx_attributed_to_rss_queue(self):
        m, nic = self.make_nic()
        self.setup_rx(m, nic)
        frame = frame_for(nic.mac)
        expect = flow_hash(frame) % 4
        assert nic.receive(frame)
        assert nic.last_rx_queue == expect
        assert nic.queues[expect].rx_packets == 1
        assert nic.queues[expect].rx_bytes == len(frame)
        assert sum(q.rx_packets for q in nic.queues) == 1

    def test_rx_queue_chosen_even_for_dropped_frame(self):
        m, nic = self.make_nic()
        self.setup_rx(m, nic, fill=0)  # no descriptors: frame drops
        frame = frame_for(nic.mac)
        assert not nic.receive(frame)
        assert nic.last_rx_queue == flow_hash(frame) % 4
        assert all(q.rx_packets == 0 for q in nic.queues)

    def test_tx_attributed_to_rss_queue(self):
        m, nic = self.make_nic()
        ring = m.phys.allocate_frame() << 12
        nic.mmio_write(REG_TDBAL, 4, ring)
        nic.mmio_write(REG_TDLEN, 4, 8 * DESC_SIZE)
        nic.mmio_write(REG_TCTL, 4, TCTL_EN)
        frame = frame_for(b"\x00\x16\x3e\x00\x00\x09")
        buf = m.phys.allocate_frame() << 12
        m.phys.write_bytes(buf, frame)
        write_desc(m.phys, ring, 0, buf, len(frame), DESC_EOP)
        nic.mmio_write(REG_TDT, 4, 1)
        expect = flow_hash(frame) % 4
        assert nic.last_tx_queue == expect
        assert nic.queues[expect].tx_packets == 1
        assert nic.queues[expect].tx_bytes == len(frame)

    def test_per_queue_sums_match_device_totals(self):
        m, nic = self.make_nic()
        self.setup_rx(m, nic)
        for i in range(6):
            assert nic.receive(frame_for(nic.mac,
                                         src=bytes(5) + bytes([i])))
        assert sum(q.rx_packets for q in nic.queues) == nic.stats.rx_packets
        assert sum(q.rx_bytes for q in nic.queues) == nic.stats.rx_bytes


class TestRtl8139Queues:
    def test_same_facade(self):
        m = Machine()
        nic = m.add_nic(model="rtl8139", num_queues=4)
        assert nic.num_queues == 4
        assert len(nic.queues) == 4
        frame = frame_for(nic.mac)
        assert nic.rss_queue(frame) == flow_hash(frame) % 4
        with pytest.raises(ValueError):
            nic.set_num_queues(-1)
