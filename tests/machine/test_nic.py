"""e1000 device model: rings, DMA, interrupts, coalescing."""

import pytest

from repro.machine import Machine
from repro.machine.nic import (
    DESC_DD,
    DESC_EOP,
    DESC_SIZE,
    ICR_RXT0,
    ICR_TXDW,
    RCTL_EN,
    REG_ICR,
    REG_IMS,
    REG_RCTL,
    REG_RDBAL,
    REG_RDH,
    REG_RDLEN,
    REG_RDT,
    REG_TCTL,
    REG_TDBAL,
    REG_TDH,
    REG_TDLEN,
    REG_TDT,
    TCTL_EN,
    CTRL_RST,
    REG_CTRL,
)


def make_nic():
    m = Machine()
    nic = m.add_nic()
    return m, nic


def write_desc(phys, base, index, addr, length, flags):
    d = base + index * DESC_SIZE
    phys.write_u32(d + 0, addr)
    phys.write_u32(d + 8, length)
    phys.write_u32(d + 12, flags)


class TestTransmit:
    def setup_ring(self, m, nic, entries=8):
        frames = m.phys.allocate_frames(1)
        ring = frames[0] << 12
        nic.mmio_write(REG_TDBAL, 4, ring)
        nic.mmio_write(REG_TDLEN, 4, entries * DESC_SIZE)
        nic.mmio_write(REG_TCTL, 4, TCTL_EN)
        return ring

    def test_single_packet(self):
        m, nic = make_nic()
        ring = self.setup_ring(m, nic)
        buf = m.phys.allocate_frame() << 12
        m.phys.write_bytes(buf, b"packet-data!")
        write_desc(m.phys, ring, 0, buf, 12, DESC_EOP)
        m.wire.keep_payloads = True
        nic.mmio_write(REG_TDT, 4, 1)
        assert m.wire.transmitted == [b"packet-data!"]
        assert nic.regs[REG_TDH] == 1
        assert m.phys.read_u32(ring + 12) & DESC_DD

    def test_multi_descriptor_packet(self):
        m, nic = make_nic()
        ring = self.setup_ring(m, nic)
        b0 = m.phys.allocate_frame() << 12
        b1 = m.phys.allocate_frame() << 12
        m.phys.write_bytes(b0, b"head-")
        m.phys.write_bytes(b1, b"tail")
        write_desc(m.phys, ring, 0, b0, 5, 0)
        write_desc(m.phys, ring, 1, b1, 4, DESC_EOP)
        m.wire.keep_payloads = True
        nic.mmio_write(REG_TDT, 4, 2)
        assert m.wire.transmitted == [b"head-tail"]
        assert nic.stats.tx_packets == 1

    def test_no_tx_when_disabled(self):
        m, nic = make_nic()
        ring = self.setup_ring(m, nic)
        nic.mmio_write(REG_TCTL, 4, 0)
        write_desc(m.phys, ring, 0, m.phys.allocate_frame() << 12, 4,
                   DESC_EOP)
        nic.mmio_write(REG_TDT, 4, 1)
        assert m.wire.tx_count == 0

    def test_txdw_interrupt_when_unmasked(self):
        m, nic = make_nic()
        ring = self.setup_ring(m, nic)
        nic.mmio_write(REG_IMS, 4, ICR_TXDW)
        fired = []
        m.intc.set_dispatcher(fired.append)
        write_desc(m.phys, ring, 0, m.phys.allocate_frame() << 12, 4,
                   DESC_EOP)
        nic.mmio_write(REG_TDT, 4, 1)
        assert fired == [nic.irq]

    def test_no_interrupt_when_masked(self):
        m, nic = make_nic()
        ring = self.setup_ring(m, nic)
        fired = []
        m.intc.set_dispatcher(fired.append)
        write_desc(m.phys, ring, 0, m.phys.allocate_frame() << 12, 4,
                   DESC_EOP)
        nic.mmio_write(REG_TDT, 4, 1)
        assert fired == []
        assert nic.regs[REG_ICR] & ICR_TXDW     # cause latched

    def test_ring_wraps(self):
        m, nic = make_nic()
        ring = self.setup_ring(m, nic, entries=4)
        buf = m.phys.allocate_frame() << 12
        for i in range(4):
            write_desc(m.phys, ring, i, buf, 4, DESC_EOP)
        nic.mmio_write(REG_TDT, 4, 3)
        assert nic.regs[REG_TDH] == 3
        write_desc(m.phys, ring, 3, buf, 4, DESC_EOP)
        nic.mmio_write(REG_TDT, 4, 0)     # wrap
        assert nic.regs[REG_TDH] == 0
        assert nic.stats.tx_packets == 4


class TestReceive:
    def setup_rx(self, m, nic, entries=8, fill=4):
        ring = m.phys.allocate_frame() << 12
        nic.mmio_write(REG_RDBAL, 4, ring)
        nic.mmio_write(REG_RDLEN, 4, entries * DESC_SIZE)
        nic.mmio_write(REG_RCTL, 4, RCTL_EN)
        bufs = []
        for i in range(fill):
            buf = m.phys.allocate_frame() << 12
            write_desc(m.phys, ring, i, buf, 0, 0)
            bufs.append(buf)
        nic.mmio_write(REG_RDT, 4, fill)
        return ring, bufs

    def test_receive_writes_buffer_and_descriptor(self):
        m, nic = make_nic()
        ring, bufs = self.setup_rx(m, nic)
        assert nic.receive(b"hello-wire")
        assert m.phys.read_bytes(bufs[0], 10) == b"hello-wire"
        flags = m.phys.read_u32(ring + 12)
        assert flags & DESC_DD and flags & DESC_EOP
        assert m.phys.read_u32(ring + 8) == 10
        assert nic.regs[REG_RDH] == 1

    def test_drop_when_ring_empty(self):
        m, nic = make_nic()
        self.setup_rx(m, nic, fill=1)
        assert nic.receive(b"a" * 10)
        assert not nic.receive(b"b" * 10)
        assert nic.stats.rx_dropped_no_desc == 1

    def test_drop_when_disabled(self):
        m, nic = make_nic()
        self.setup_rx(m, nic)
        nic.mmio_write(REG_RCTL, 4, 0)
        assert not nic.receive(b"x")

    def test_rx_interrupt(self):
        m, nic = make_nic()
        self.setup_rx(m, nic)
        nic.mmio_write(REG_IMS, 4, ICR_RXT0)
        fired = []
        m.intc.set_dispatcher(fired.append)
        nic.receive(b"pkt")
        assert fired == [nic.irq]

    def test_slots_free_accounting(self):
        m, nic = make_nic()
        self.setup_rx(m, nic, fill=3)
        assert nic.rx_slots_free() == 3
        nic.receive(b"1")
        assert nic.rx_slots_free() == 2


class TestIcrSemantics:
    def test_icr_read_to_clear(self):
        m, nic = make_nic()
        nic.regs[REG_ICR] = ICR_TXDW
        assert nic.mmio_read(REG_ICR, 4) == ICR_TXDW
        assert nic.mmio_read(REG_ICR, 4) == 0

    def test_ims_accumulates_imc_clears(self):
        m, nic = make_nic()
        nic.mmio_write(REG_IMS, 4, ICR_TXDW)
        nic.mmio_write(REG_IMS, 4, ICR_RXT0)
        assert nic.regs[REG_IMS] == ICR_TXDW | ICR_RXT0
        nic.mmio_write(0xD8, 4, ICR_TXDW)      # IMC
        assert nic.regs[REG_IMS] == ICR_RXT0

    def test_reset(self):
        m, nic = make_nic()
        nic.mmio_write(REG_TDT, 4, 5)
        nic.mmio_write(REG_CTRL, 4, CTRL_RST)
        assert nic.regs[REG_TDT] == 0


class TestCoalescing:
    def test_batched_interrupts(self):
        m, nic = make_nic()
        ring = m.phys.allocate_frame() << 12
        nic.mmio_write(REG_RDBAL, 4, ring)
        nic.mmio_write(REG_RDLEN, 4, 16 * DESC_SIZE)
        nic.mmio_write(REG_RCTL, 4, RCTL_EN)
        for i in range(15):
            write_desc(m.phys, ring, i, m.phys.allocate_frame() << 12, 0, 0)
        nic.mmio_write(REG_RDT, 4, 15)
        nic.mmio_write(REG_IMS, 4, ICR_RXT0)
        nic.interrupt_batch = 4
        fired = []
        m.intc.set_dispatcher(fired.append)
        for _ in range(9):
            nic.receive(b"p")
        assert len(fired) == 2            # at the 4th and 8th
        nic.flush_interrupts()
        assert len(fired) == 3

    def test_flush_noop_when_no_cause(self):
        m, nic = make_nic()
        fired = []
        m.intc.set_dispatcher(fired.append)
        nic.flush_interrupts()
        assert fired == []


class TestInterruptController:
    def test_mask_defers_until_unmask(self):
        m, _ = make_nic()
        fired = []
        m.intc.set_dispatcher(fired.append)
        m.intc.mask(5)
        m.intc.raise_irq(5)
        assert fired == []
        m.intc.unmask(5)
        assert fired == [5]

    def test_no_reentrant_dispatch(self):
        m, _ = make_nic()
        order = []

        def dispatcher(irq):
            order.append(("enter", irq))
            if irq == 1:
                m.intc.raise_irq(2)    # raised during handling: queued
            order.append(("exit", irq))

        m.intc.set_dispatcher(dispatcher)
        m.intc.raise_irq(1)
        assert order == [("enter", 1), ("exit", 1), ("enter", 2),
                         ("exit", 2)]
