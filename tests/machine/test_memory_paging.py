"""Physical memory, MMIO dispatch, page tables, address spaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    AddressSpace,
    BusError,
    HYPERVISOR_BASE,
    PAGE_SIZE,
    PageFault,
    PageTable,
    PhysicalMemory,
    ProtectionFault,
)


class FakeDevice:
    def __init__(self):
        self.reads = []
        self.writes = []

    def mmio_read(self, offset, size):
        self.reads.append((offset, size))
        return 0xAB

    def mmio_write(self, offset, size, value):
        self.writes.append((offset, size, value))


class TestPhysicalMemory:
    def test_frame_allocation_monotonic_contiguous(self):
        phys = PhysicalMemory()
        frames = phys.allocate_frames(4)
        assert frames == [frames[0] + i for i in range(4)]

    def test_unallocated_access_is_bus_error(self):
        phys = PhysicalMemory()
        with pytest.raises(BusError):
            phys.read(0x5000_000, 4)

    def test_read_write_roundtrip(self):
        phys = PhysicalMemory()
        frame = phys.allocate_frame()
        addr = frame << 12
        phys.write(addr + 8, 4, 0xDEADBEEF)
        assert phys.read(addr + 8, 4) == 0xDEADBEEF

    def test_small_sizes(self):
        phys = PhysicalMemory()
        addr = phys.allocate_frame() << 12
        phys.write(addr, 1, 0x12)
        phys.write(addr + 1, 2, 0x3456)
        assert phys.read(addr, 1) == 0x12
        assert phys.read(addr + 1, 2) == 0x3456
        assert phys.read(addr, 4) == 0x00345612

    def test_write_masks_to_size(self):
        phys = PhysicalMemory()
        addr = phys.allocate_frame() << 12
        phys.write(addr, 1, 0x1FF)
        assert phys.read(addr, 1) == 0xFF

    def test_bytes_across_frames(self):
        phys = PhysicalMemory()
        f0, f1 = phys.allocate_frames(2)
        base = (f0 << 12) + PAGE_SIZE - 3
        phys.write_bytes(base, b"abcdef")
        assert phys.read_bytes(base, 6) == b"abcdef"

    def test_frame_zero_reserved(self):
        phys = PhysicalMemory()
        with pytest.raises(BusError):
            phys.read(0x10, 4)

    def test_exhaustion(self):
        phys = PhysicalMemory(frames=3)
        phys.allocate_frames(2)    # frame 0 reserved
        with pytest.raises(MemoryError):
            phys.allocate_frame()

    def test_mmio_dispatch(self):
        phys = PhysicalMemory()
        dev = FakeDevice()
        phys.add_mmio_region(0xFEB00000, 0x1000, dev)
        assert phys.read(0xFEB00010, 4) == 0xAB
        phys.write(0xFEB00020, 4, 7)
        assert dev.reads == [(0x10, 4)]
        assert dev.writes == [(0x20, 4, 7)]

    def test_mmio_overlap_rejected(self):
        phys = PhysicalMemory()
        phys.add_mmio_region(0x1000_0000, 0x1000, FakeDevice())
        with pytest.raises(ValueError):
            phys.add_mmio_region(0x1000_0800, 0x1000, FakeDevice())

    @given(st.integers(0, PAGE_SIZE - 4), st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_u32_roundtrip_property(self, offset, value):
        phys = PhysicalMemory()
        addr = (phys.allocate_frame() << 12) + offset
        phys.write_u32(addr, value)
        assert phys.read_u32(addr) == value


class TestAddressSpace:
    def make(self):
        phys = PhysicalMemory()
        hyp = PageTable()
        return phys, hyp, AddressSpace("dom", phys, hyp)

    def test_translate_unmapped_faults(self):
        _, _, space = self.make()
        with pytest.raises(PageFault):
            space.translate(0xC0000000)

    def test_map_and_translate(self):
        phys, _, space = self.make()
        frame = phys.allocate_frame()
        space.map_page(0xC0000000, frame)
        assert space.translate(0xC0000123) == (frame << 12) | 0x123

    def test_unaligned_map_rejected(self):
        phys, _, space = self.make()
        with pytest.raises(ValueError):
            space.map_page(0xC0000010, 1)

    def test_readonly_write_faults(self):
        phys, _, space = self.make()
        frame = phys.allocate_frame()
        space.map_page(0xC0000000, frame, writable=False)
        assert space.translate(0xC0000000) == frame << 12
        with pytest.raises(ProtectionFault):
            space.translate(0xC0000000, write=True)

    def test_hypervisor_region_shared(self):
        phys = PhysicalMemory()
        hyp = PageTable()
        a = AddressSpace("a", phys, hyp)
        b = AddressSpace("b", phys, hyp)
        frame = phys.allocate_frame()
        hyp.map(HYPERVISOR_BASE >> 12, frame)
        assert a.translate(HYPERVISOR_BASE) == frame << 12
        assert b.translate(HYPERVISOR_BASE) == frame << 12

    def test_domain_cannot_shadow_hypervisor(self):
        phys, _, space = self.make()
        frame = phys.allocate_frame()
        with pytest.raises(ValueError):
            space.map_page(HYPERVISOR_BASE, frame)

    def test_aliasing_allowed(self):
        phys, _, space = self.make()
        frame = phys.allocate_frame()
        space.map_page(0xC0000000, frame)
        space.map_page(0xC0100000, frame)
        space.write_u32(0xC0000000, 99)
        assert space.read_u32(0xC0100000) == 99

    def test_page_straddling_access(self):
        phys, _, space = self.make()
        f0, f1 = phys.allocate_frames(2)
        space.map_page(0xC0000000, f0)
        space.map_page(0xC0001000, f1)
        addr = 0xC0000FFE
        space.write(addr, 4, 0x11223344)
        assert space.read(addr, 4) == 0x11223344

    def test_straddle_into_unmapped_faults(self):
        phys, _, space = self.make()
        space.map_page(0xC0000000, phys.allocate_frame())
        with pytest.raises(PageFault):
            space.write(0xC0000FFE, 4, 1)

    def test_map_new_pages(self):
        phys, _, space = self.make()
        space.map_new_pages(0xC0000000, 3)
        for i in range(3):
            assert space.is_mapped(0xC0000000 + i * PAGE_SIZE)
        assert not space.is_mapped(0xC0003000)

    def test_unmap(self):
        phys, _, space = self.make()
        space.map_new_pages(0xC0000000, 1)
        space.unmap_page(0xC0000000)
        assert not space.is_mapped(0xC0000000)

    def test_read_write_bytes(self):
        phys, _, space = self.make()
        space.map_new_pages(0xC0000000, 3)
        payload = bytes(range(200)) * 30
        space.write_bytes(0xC0000F00, payload)
        assert space.read_bytes(0xC0000F00, len(payload)) == payload
