"""CPU interpreter: instruction semantics, flags, calls, natives, faults."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.machine import (
    AddressSpace,
    CpuBudgetExceeded,
    ExecutionFault,
    Machine,
    PAGE_SIZE,
)

DATA = 0xC0000000
STACK_TOP = 0xC0104000


def make_machine():
    m = Machine()
    space = AddressSpace("test", m.phys, m.hypervisor_table)
    space.map_new_pages(DATA, 4)
    space.map_new_pages(0xC0100000, 4)
    m.cpu.address_space = space
    return m, space


def run(source, args=(), setup=None, constants=None):
    m, space = make_machine()
    program = assemble(".globl f\n" + source, constants=constants)
    loaded = m.load_linked_program(program, 0x08000000)
    if setup:
        setup(m, space)
    result = m.cpu.call_function(loaded.symbol("f"), list(args),
                                 stack_top=STACK_TOP)
    return result, m, space


class TestArithmetic:
    def test_mov_add_sub(self):
        r, *_ = run("f: movl $10, %eax\naddl $5, %eax\nsubl $3, %eax\nret")
        assert r == 12

    def test_wraparound(self):
        r, *_ = run("f: movl $0xffffffff, %eax\naddl $2, %eax\nret")
        assert r == 1

    def test_logic_ops(self):
        r, *_ = run("f: movl $0xf0f0, %eax\nandl $0xff00, %eax\n"
                    "orl $0x1, %eax\nxorl $0xf000, %eax\nret")
        assert r == (0xF0F0 & 0xFF00 | 0x1) ^ 0xF000

    def test_imul(self):
        r, *_ = run("f: movl $7, %eax\nmovl $6, %ecx\nimull %ecx, %eax\nret")
        assert r == 42

    def test_neg_not(self):
        r, *_ = run("f: movl $5, %eax\nnegl %eax\nnotl %eax\nret")
        assert r == 4     # ~(-5) = 4

    def test_inc_dec(self):
        r, *_ = run("f: movl $10, %eax\nincl %eax\nincl %eax\ndecl %eax\nret")
        assert r == 11

    def test_shifts(self):
        r, *_ = run("f: movl $1, %eax\nshll $4, %eax\nshrl $1, %eax\nret")
        assert r == 8

    def test_sar_sign_extends(self):
        r, *_ = run("f: movl $0x80000000, %eax\nsarl $4, %eax\nret")
        assert r == 0xF8000000

    def test_lea_math(self):
        r, *_ = run("f: movl $10, %eax\nmovl $3, %ecx\n"
                    "leal 5(%eax,%ecx,4), %eax\nret")
        assert r == 10 + 3 * 4 + 5

    def test_xchg(self):
        r, *_ = run("f: movl $1, %eax\nmovl $2, %ecx\nxchgl %eax, %ecx\n"
                    "addl %ecx, %eax\nret")
        assert r == 3

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_add_matches_python(self, a, b):
        r, *_ = run(f"f: movl ${a & 0x7FFFFFFF}, %eax\n"
                    f"addl ${b & 0x7FFFFFFF}, %eax\nret")
        assert r == ((a & 0x7FFFFFFF) + (b & 0x7FFFFFFF)) & 0xFFFFFFFF


class TestConditions:
    @pytest.mark.parametrize("a,b,cc,taken", [
        (1, 1, "je", True), (1, 2, "je", False),
        (1, 2, "jne", True),
        (1, 2, "jl", True), (2, 1, "jl", False),
        (-1 & 0xFFFFFFFF, 1, "jl", True),      # signed
        (1, 2, "jb", True),
        (0xFFFFFFFF, 1, "jb", False),           # unsigned: big not below 1
        (2, 2, "jae", True), (2, 2, "jbe", True),
        (3, 2, "jg", True), (2, 3, "jge", False),
        (3, 2, "ja", True),
    ])
    def test_cmp_jcc(self, a, b, cc, taken):
        r, *_ = run(f"""
f:  movl ${a}, %eax
    cmpl ${b}, %eax
    {cc} yes
    movl $0, %eax
    ret
yes:
    movl $1, %eax
    ret
""")
        assert r == (1 if taken else 0)

    def test_test_sets_zf(self):
        r, *_ = run("f: movl $0, %eax\ntestl %eax, %eax\nje z\n"
                    "movl $7, %eax\nret\nz: movl $3, %eax\nret")
        assert r == 3

    def test_js_jns(self):
        r, *_ = run("f: movl $0x80000000, %eax\ntestl %eax, %eax\njs neg\n"
                    "movl $0, %eax\nret\nneg: movl $1, %eax\nret")
        assert r == 1

    def test_inc_preserves_cf(self):
        # cmp sets CF; inc must not clobber it
        r, *_ = run("""
f:  movl $1, %eax
    cmpl $2, %eax
    incl %eax
    jb below
    movl $0, %eax
    ret
below:
    movl $1, %eax
    ret
""")
        assert r == 1

    def test_pushf_popf_roundtrip(self):
        r, *_ = run("""
f:  movl $1, %eax
    cmpl $1, %eax
    pushf
    cmpl $99, %eax
    popf
    je equal
    movl $0, %eax
    ret
equal:
    movl $1, %eax
    ret
""")
        assert r == 1


class TestMemoryAndStack:
    def test_load_store(self):
        def setup(m, space):
            space.write_u32(DATA + 16, 1234)
        r, m, space = run(
            f"f: movl ${DATA}, %ecx\nmovl 16(%ecx), %eax\n"
            f"movl %eax, 20(%ecx)\nret", setup=setup)
        assert r == 1234
        assert space.read_u32(DATA + 20) == 1234

    def test_byte_and_word_access(self):
        def setup(m, space):
            space.write_bytes(DATA, b"\x11\x22\x33\x44")
        r, m, space = run(
            f"f: movl ${DATA}, %ecx\nmovzbl (%ecx), %eax\n"
            f"movzwl 1(%ecx), %edx\naddl %edx, %eax\nret", setup=setup)
        assert r == 0x11 + 0x3322

    def test_movb_partial_store(self):
        def setup(m, space):
            space.write_u32(DATA, 0xAABBCCDD)
        r, m, space = run(
            f"f: movl ${DATA}, %ecx\nmovb $0x99, (%ecx)\n"
            f"movl (%ecx), %eax\nret", setup=setup)
        assert r == 0xAABBCC99

    def test_push_pop(self):
        r, *_ = run("f: movl $5, %eax\npushl %eax\nmovl $9, %eax\n"
                    "popl %ecx\nmovl %ecx, %eax\nret")
        assert r == 5

    def test_stack_args(self):
        r, *_ = run("f: movl 4(%esp), %eax\naddl 8(%esp), %eax\nret",
                    args=[30, 12])
        assert r == 42

    def test_call_and_frame(self):
        r, *_ = run("""
f:  pushl $21
    call double
    addl $4, %esp
    ret
double:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    addl %eax, %eax
    popl %ebp
    ret
""")
        assert r == 42

    def test_recursion(self):
        # factorial(5) via the stack
        r, *_ = run("""
f:  pushl $5
    call fact
    addl $4, %esp
    ret
fact:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    cmpl $1, %eax
    jle base
    decl %eax
    pushl %eax
    call fact
    addl $4, %esp
    movl 8(%ebp), %ecx
    imull %ecx, %eax
    popl %ebp
    ret
base:
    movl $1, %eax
    popl %ebp
    ret
""")
        assert r == 120

    def test_indirect_call_through_register(self):
        r, *_ = run("""
f:  movl $target, %eax
    call *%eax
    ret
target:
    movl $77, %eax
    ret
""")
        assert r == 77

    def test_indirect_call_through_memory(self):
        def setup(m, space):
            pass
        r, m, space = run(f"""
f:  movl $target, %ecx
    movl ${DATA}, %edx
    movl %ecx, (%edx)
    call *(%edx)
    ret
target:
    movl $88, %eax
    ret
""", setup=setup)
        assert r == 88

    def test_indirect_jmp(self):
        r, *_ = run("""
f:  movl $out, %eax
    jmp *%eax
    movl $0, %eax
    ret
out:
    movl $55, %eax
    ret
""")
        assert r == 55


class TestStringOps:
    def test_rep_movsl(self):
        def setup(m, space):
            space.write_bytes(DATA, bytes(range(40)))
        r, m, space = run(f"""
f:  movl ${DATA}, %esi
    movl ${DATA + 0x100}, %edi
    movl $10, %ecx
    rep movsl
    ret
""", setup=setup)
        assert space.read_bytes(DATA + 0x100, 40) == bytes(range(40))
        assert m.cpu.regs["ecx"] == 0

    def test_rep_stosb(self):
        r, m, space = run(f"""
f:  movl ${DATA}, %edi
    movl $0x41, %eax
    movl $16, %ecx
    rep stosb
    ret
""")
        assert space.read_bytes(DATA, 16) == b"A" * 16

    def test_lodsl(self):
        def setup(m, space):
            space.write_u32(DATA, 0xCAFEBABE)
        r, m, space = run(
            f"f: movl ${DATA}, %esi\nlodsl\nret", setup=setup)
        assert r == 0xCAFEBABE
        assert m.cpu.regs["esi"] == DATA + 4

    def test_repe_cmpsb_equal(self):
        def setup(m, space):
            space.write_bytes(DATA, b"hello")
            space.write_bytes(DATA + 0x100, b"hello")
        r, m, space = run(f"""
f:  movl ${DATA}, %esi
    movl ${DATA + 0x100}, %edi
    movl $5, %ecx
    repe cmpsb
    je same
    movl $0, %eax
    ret
same:
    movl $1, %eax
    ret
""", setup=setup)
        assert r == 1

    def test_repe_cmpsb_differs_stops_early(self):
        def setup(m, space):
            space.write_bytes(DATA, b"heXlo")
            space.write_bytes(DATA + 0x100, b"hello")
        r, m, space = run(f"""
f:  movl ${DATA}, %esi
    movl ${DATA + 0x100}, %edi
    movl $5, %ecx
    repe cmpsb
    movl %ecx, %eax
    ret
""", setup=setup)
        assert r == 2     # stopped at index 2, ecx = 5 - 3

    def test_repne_scasb_finds_byte(self):
        def setup(m, space):
            space.write_bytes(DATA, b"abcdef")
        r, m, space = run(f"""
f:  movl ${DATA}, %edi
    movl $0x64, %eax      # 'd'
    movl $6, %ecx
    repne scasb
    movl %edi, %eax
    ret
""", setup=setup)
        assert r == DATA + 4   # one past the match


class TestNativesAndFaults:
    def test_native_call(self):
        m, space = make_machine()
        calls = []

        def fn(cpu):
            calls.append(cpu.read_stack_arg(0))
            return cpu.read_stack_arg(0) * 2

        m.register_native("double_it", fn)
        program = assemble(".globl f\nf: pushl $21\ncall double_it\n"
                           "addl $4, %esp\nret")
        loaded = m.load_program(program, 0x08000000,
                                extern={"double_it":
                                        m.natives.address_of("double_it")})
        r = m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)
        assert r == 42
        assert calls == [21]

    def test_native_none_preserves_eax(self):
        m, space = make_machine()
        m.register_native("noop", lambda cpu: None)
        program = assemble(".globl f\nf: movl $7, %eax\ncall noop\nret")
        loaded = m.load_program(program, 0x08000000,
                                extern={"noop": m.natives.address_of("noop")})
        assert m.cpu.call_function(loaded.symbol("f"), [],
                                   stack_top=STACK_TOP) == 7

    def test_nested_call_function_from_native(self):
        m, space = make_machine()
        program = assemble(".globl f\n.globl helper\n"
                           "f: call trampoline\nret\n"
                           "helper: movl $13, %eax\nret")
        addr_holder = {}

        def trampoline(cpu):
            return cpu.call_function(addr_holder["helper"], [],
                                     stack_top=STACK_TOP - 0x800)

        m.register_native("trampoline", trampoline)
        loaded = m.load_program(
            program, 0x08000000,
            extern={"trampoline": m.natives.address_of("trampoline")})
        addr_holder["helper"] = loaded.symbol("helper")
        assert m.cpu.call_function(loaded.symbol("f"), [],
                                   stack_top=STACK_TOP) == 13

    def test_budget_exceeded_on_infinite_loop(self):
        m, space = make_machine()
        program = assemble(".globl f\nf: jmp f")
        loaded = m.load_program(program, 0x08000000)
        m.cpu.max_steps_per_call = 1000
        with pytest.raises(CpuBudgetExceeded):
            m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)

    def test_execute_unmapped_address(self):
        m, space = make_machine()
        program = assemble(".globl f\nf: movl $0x12345678, %eax\ncall *%eax\nret")
        loaded = m.load_program(program, 0x08000000)
        with pytest.raises(ExecutionFault):
            m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)

    def test_jump_mid_instruction(self):
        m, space = make_machine()
        program = assemble(".globl f\nf: movl $1, %eax\nret")
        loaded = m.load_program(program, 0x08000000)
        with pytest.raises(ExecutionFault):
            m.cpu.call_function(loaded.base + 1, [], stack_top=STACK_TOP)

    def test_ud2_faults(self):
        m, space = make_machine()
        program = assemble(".globl f\nf: ud2")
        loaded = m.load_program(program, 0x08000000)
        with pytest.raises(ExecutionFault):
            m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)

    def test_esp_restored_after_call_function(self):
        m, space = make_machine()
        program = assemble(".globl f\nf: movl $1, %eax\nret")
        loaded = m.load_program(program, 0x08000000)
        m.cpu.regs["esp"] = 0x1234
        m.cpu.call_function(loaded.symbol("f"), [5, 6], stack_top=STACK_TOP)
        assert m.cpu.regs["esp"] == 0x1234

    def test_cycles_charged(self):
        m, space = make_machine()
        program = assemble(".globl f\nf: movl $1, %eax\nret")
        loaded = m.load_program(program, 0x08000000)
        before = m.account.total
        m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)
        assert m.account.total > before

    def test_category_attribution(self):
        m, space = make_machine()
        program = assemble(".globl f\nf: movl $1, %eax\nret")
        loaded = m.load_program(program, 0x08000000)
        m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP,
                            category="e1000")
        assert m.account.cycles["e1000"] > 0

    def test_hot_range_cheaper(self):
        m, space = make_machine()
        program = assemble(f".globl f\nf: movl {DATA}, %eax\nret")
        loaded = m.load_program(program, 0x08000000)
        m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)
        cold = m.account.total
        m.account.reset()
        m.cpu.add_hot_range(DATA, DATA + PAGE_SIZE)
        m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)
        assert m.account.total < cold
