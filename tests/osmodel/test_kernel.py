"""Kernel model: skb lifecycle, netif_rx, module loading, timers, DMA."""

import pytest

from repro.isa import assemble
from repro.machine import Machine
from repro.osmodel import Kernel, KernelError, layout as L
from repro.osmodel.netdev import NetDevice
from repro.osmodel.skbuff import SkBuff
from repro.xen import Hypervisor


def make_kernel(paravirtual=False):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    kernel = Kernel(m, dom0, costs=xen.costs, paravirtual=paravirtual)
    return m, xen, kernel


class TestSkbLifecycle:
    def test_alloc_free(self):
        m, xen, k = make_kernel()
        allocs = k.heap.allocated_bytes
        skb = k.alloc_skb(1500)
        assert skb.headroom() == L.NET_SKB_PAD
        k.free_skb(skb.addr)
        assert k.heap.allocated_bytes == allocs

    def test_refcount_delays_free(self):
        m, xen, k = make_kernel()
        skb = k.alloc_skb(100)
        skb.refcnt = 2
        k.free_skb(skb.addr)
        assert SkBuff(k.memory_view(), skb.addr).refcnt == 1

    def test_pool_release_hook(self):
        m, xen, k = make_kernel()
        released = []
        k.pool_release = released.append
        skb = k.alloc_skb(100)
        skb.pool = 1
        k.free_skb(skb.addr)
        assert released == [skb.addr]

    def test_oversized_skb_rejected(self):
        m, xen, k = make_kernel()
        with pytest.raises(KernelError):
            k.alloc_skb(4000)


class TestNetifRx:
    def test_local_delivery_counts_and_charges(self):
        m, xen, k = make_kernel(paravirtual=True)
        ndev = k.create_netdev_for_nic(m.add_nic())
        skb = k.alloc_skb(500)
        skb.put(500)
        skb.dev = ndev.addr
        before = m.account.snapshot()
        k.netif_rx(skb.addr)
        delta = m.account.delta_since(before)
        assert k.rx_delivered == 1
        assert k.rx_bytes == 500
        assert delta["dom0"] == k.costs.kernel_rx_stack
        assert delta["Xen"] == k.costs.pv_kernel_rx_overhead
        assert ndev.rx_packets == 1

    def test_native_kernel_no_xen_charge(self):
        m, xen, k = make_kernel(paravirtual=False)
        ndev = k.create_netdev_for_nic(m.add_nic())
        skb = k.alloc_skb(100)
        skb.put(100)
        skb.dev = ndev.addr
        before = m.account.snapshot()
        k.netif_rx(skb.addr)
        assert m.account.delta_since(before)["Xen"] == 0

    def test_custom_rx_handler(self):
        m, xen, k = make_kernel()
        got = []
        k.rx_handler = got.append
        ndev = k.create_netdev_for_nic(m.add_nic())
        skb = k.alloc_skb(10)
        skb.dev = ndev.addr
        k.netif_rx(skb.addr)
        assert got == [skb.addr]


class TestTransmitPath:
    def test_no_xmit_pointer_raises(self):
        m, xen, k = make_kernel()
        ndev = k.create_netdev_for_nic(m.add_nic())
        with pytest.raises(KernelError):
            k.tcp_transmit(ndev.addr, 100)

    def test_queue_stopped_drops(self):
        m, xen, k = make_kernel()
        ndev = k.create_netdev_for_nic(m.add_nic())
        ndev.hard_start_xmit = 0xDEAD  # never reached
        ndev.stop_queue()
        assert not k.tcp_transmit(ndev.addr, 100)
        assert k.tx_dropped == 1

    def test_build_tx_skb_header(self):
        m, xen, k = make_kernel()
        ndev = k.create_netdev_for_nic(m.add_nic())
        skb = k.build_tx_skb(ndev, 64, dst_mac=b"\x01\x02\x03\x04\x05\x06")
        raw = k.memory_view().read_bytes(skb.data, 14)
        assert raw[:6] == b"\x01\x02\x03\x04\x05\x06"
        assert raw[6:12] == ndev.mac
        assert raw[12:14] == b"\x08\x00"
        assert skb.len == 14 + 64


class TestModuleLoader:
    SOURCE = """
.globl entry
.comm my_counter, 4
entry:
    incl my_counter
    movl my_counter, %eax
    ret
"""

    def test_comm_allocated_and_usable(self):
        m, xen, k = make_kernel()
        module = k.load_driver(assemble(self.SOURCE, name="mod"))
        assert "my_counter" in module.data_symbols
        r1 = k.call_driver(module.symbol("entry"), [])
        r2 = k.call_driver(module.symbol("entry"), [])
        assert (r1, r2) == (1, 2)

    def test_unknown_import_rejected(self):
        m, xen, k = make_kernel()
        program = assemble(".globl f\nf: call not_a_routine\nret")
        with pytest.raises(KernelError):
            k.load_driver(program)

    def test_import_binding(self):
        m, xen, k = make_kernel()
        program = assemble(
            ".globl f\nf: pushl $0\npushl $64, \ncall kmalloc\n"
            .replace(", \n", "\n") + "addl $8, %esp\nret")
        module = k.load_driver(program)
        addr = k.call_driver(module.symbol("f"), [])
        assert k.heap.owns(addr)

    def test_code_symbol_immediate_resolved(self):
        m, xen, k = make_kernel()
        program = assemble("""
.globl f
f:
    movl $helper, %eax
    call *%eax
    ret
helper:
    movl $42, %eax
    ret
""")
        module = k.load_driver(program)
        assert k.call_driver(module.symbol("f"), []) == 42

    def test_two_modules_disjoint(self):
        m, xen, k = make_kernel()
        p1 = assemble(".globl a\na: movl $1, %eax\nret", name="m1")
        p2 = assemble(".globl b\nb: movl $2, %eax\nret", name="m2")
        m1 = k.load_driver(p1)
        m2 = k.load_driver(p2)
        assert m2.code_base >= m1.loaded.end
        assert k.call_driver(m1.symbol("a"), []) == 1
        assert k.call_driver(m2.symbol("b"), []) == 2


class TestDmaAndIoremap:
    def test_dma_map_contiguous(self):
        m, xen, k = make_kernel()
        vaddr = k.heap.alloc_pages(2)
        bus = k.dma_map(vaddr, 8000)
        assert bus == k.domain.aspace.translate(vaddr)

    def test_dma_map_discontiguous_rejected(self):
        m, xen, k = make_kernel()
        # two separately mapped (non-adjacent) pages
        a = k.heap.alloc_pages(1)
        k.heap.alloc_pages(1)
        b = k.heap.alloc_pages(1)
        # force a virtual range spanning a..b by checking a 2-page span
        # starting in the middle page (physically reordered is unlikely,
        # so construct one manually):
        space = k.domain.aspace
        f1 = m.phys.allocate_frame()
        m.phys.allocate_frame()               # hole
        f2 = m.phys.allocate_frame()
        space.map_page(0xC7000000, f1)
        space.map_page(0xC7001000, f2)
        with pytest.raises(KernelError):
            k.dma_map(0xC7000800, 4096)

    def test_ioremap_reaches_device(self):
        m, xen, k = make_kernel()
        nic = m.add_nic()
        vaddr = k.ioremap(nic.mmio.start, 0x4000)
        # STATUS register has the link-up bit set
        assert k.memory_view().read(vaddr + 0x8, 4) & 0x2


class TestTimers:
    def test_due_timer_fires_driver_function(self):
        m, xen, k = make_kernel()
        program = assemble("""
.globl tick
.comm ticks, 4
tick:
    incl ticks
    ret
""")
        module = k.load_driver(program)
        timer = k.heap.alloc(L.TIMER_SIZE)
        mem = k.memory_view()
        mem.write_u32(timer + L.TIMER_FN, module.symbol("tick"))
        mem.write_u32(timer + L.TIMER_ARG, 0)
        mem.write_u32(timer + L.TIMER_EXPIRES, 0)
        mem.write_u32(timer + L.TIMER_ACTIVE, 1)
        k.timers.append(timer)
        assert k.run_due_timers() == 1
        assert mem.read_u32(module.data_symbols["ticks"]) == 1
        # fired once; now inactive
        assert k.run_due_timers() == 0

    def test_future_timer_not_fired(self):
        m, xen, k = make_kernel()
        timer = k.heap.alloc(L.TIMER_SIZE)
        mem = k.memory_view()
        mem.write_u32(timer + L.TIMER_EXPIRES, 10**9)
        mem.write_u32(timer + L.TIMER_ACTIVE, 1)
        k.timers.append(timer)
        assert k.run_due_timers() == 0
