"""Kernel heap allocator and sk_buff structure manipulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import AddressSpace, Machine, PAGE_SIZE
from repro.osmodel import HeapError, KernelHeap, SkBuff, init_skb, layout as L


def make_space():
    m = Machine()
    space = AddressSpace("k", m.phys, m.hypervisor_table)
    return m, space


class TestHeap:
    def test_alloc_returns_mapped_zeroed(self):
        m, space = make_space()
        heap = KernelHeap(space)
        addr = heap.alloc(64)
        assert space.read_bytes(addr, 64) == b"\x00" * 64

    def test_size_class_alignment(self):
        m, space = make_space()
        heap = KernelHeap(space)
        for size in (1, 32, 100, 1000, 2048):
            addr = heap.alloc(size)
            cls = 32
            while cls < size:
                cls <<= 1
            assert addr % cls == 0

    def test_small_alloc_never_crosses_page(self):
        m, space = make_space()
        heap = KernelHeap(space)
        for _ in range(50):
            addr = heap.alloc(2048)
            assert (addr % PAGE_SIZE) + 2048 <= PAGE_SIZE

    def test_free_and_reuse(self):
        m, space = make_space()
        heap = KernelHeap(space)
        a = heap.alloc(128)
        heap.free(a)
        b = heap.alloc(128)
        assert b == a

    def test_double_free_detected(self):
        m, space = make_space()
        heap = KernelHeap(space)
        a = heap.alloc(128)
        heap.free(a)
        with pytest.raises(HeapError):
            heap.free(a)

    def test_free_unknown_rejected(self):
        m, space = make_space()
        heap = KernelHeap(space)
        with pytest.raises(HeapError):
            heap.free(0xC1000123)

    def test_zero_size_rejected(self):
        m, space = make_space()
        heap = KernelHeap(space)
        with pytest.raises(HeapError):
            heap.alloc(0)

    def test_alloc_pages_physically_contiguous(self):
        m, space = make_space()
        heap = KernelHeap(space)
        vaddr = heap.alloc_pages(4)
        base = space.translate(vaddr)
        for i in range(4):
            assert space.translate(vaddr + i * PAGE_SIZE) == \
                base + i * PAGE_SIZE

    def test_exhaustion(self):
        m, space = make_space()
        heap = KernelHeap(space, base=0xC1000000, limit=0xC1002000)
        heap.alloc_pages(2)
        with pytest.raises(HeapError):
            heap.alloc(64)

    def test_accounting(self):
        m, space = make_space()
        heap = KernelHeap(space)
        a = heap.alloc(100)      # class 128
        assert heap.allocated_bytes == 128
        heap.free(a)
        assert heap.allocated_bytes == 0

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_property_no_overlap(self, sizes):
        m, space = make_space()
        heap = KernelHeap(space)
        ranges = []
        for size in sizes:
            addr = heap.alloc(size)
            cls = 32
            while cls < size:
                cls <<= 1
            for lo, hi in ranges:
                assert addr + cls <= lo or addr >= hi
            ranges.append((addr, addr + cls))


class TestSkBuff:
    def make_skb(self):
        m, space = make_space()
        heap = KernelHeap(space)
        struct = heap.alloc(L.SKB_STRUCT_SIZE)
        buf = heap.alloc(L.SKB_BUFFER_SIZE)
        return init_skb(space, struct, buf), space

    def test_init_state(self):
        skb, _ = self.make_skb()
        assert skb.len == 0
        assert skb.data == skb.head == skb.tail
        assert skb.end == skb.head + L.SKB_BUFFER_SIZE
        assert skb.refcnt == 1
        assert skb.nr_frags == 0

    def test_reserve_put_pull(self):
        skb, _ = self.make_skb()
        skb.reserve(64)
        assert skb.headroom() == 64
        old_tail = skb.put(100)
        assert old_tail == skb.head + 64
        assert skb.len == 100
        skb.pull(14)
        assert skb.len == 86
        assert skb.data == skb.head + 64 + 14

    def test_put_overflow_rejected(self):
        skb, _ = self.make_skb()
        with pytest.raises(ValueError):
            skb.put(L.SKB_BUFFER_SIZE + 1)

    def test_payload_roundtrip(self):
        skb, space = self.make_skb()
        skb.put(16)
        skb.write_payload(b"0123456789abcdef")
        assert skb.read_payload() == b"0123456789abcdef"

    def test_fragments(self):
        skb, _ = self.make_skb()
        skb.put(96)
        skb.add_frag(page=0x5000, off=96, size=1000)
        skb.add_frag(page=0x6000, off=0, size=300)
        assert skb.nr_frags == 2
        assert skb.len == 96 + 1000 + 300
        assert skb.data_len == 1300
        assert skb.linear_len == 96
        assert skb.frag(0) == (0x5000, 96, 1000)
        assert skb.frag(1) == (0x6000, 0, 300)

    def test_too_many_frags_rejected(self):
        skb, _ = self.make_skb()
        for i in range(L.SKB_MAX_FRAGS):
            skb.add_frag(0x1000 * i, 0, 10)
        with pytest.raises(ValueError):
            skb.add_frag(0x9000, 0, 10)

    def test_protocol_u16(self):
        skb, _ = self.make_skb()
        skb.protocol = 0x0800
        assert skb.protocol == 0x0800

    def test_struct_offsets_do_not_overlap(self):
        offsets = [
            (L.SKB_NEXT, 4), (L.SKB_DEV, 4), (L.SKB_DATA, 4),
            (L.SKB_LEN, 4), (L.SKB_HEAD, 4), (L.SKB_END, 4),
            (L.SKB_TAIL, 4), (L.SKB_PROTOCOL, 2), (L.SKB_DATA_LEN, 2),
            (L.SKB_NR_FRAGS, 4),
            (L.SKB_FRAGS, L.SKB_MAX_FRAGS * L.SKB_FRAG_ENTRY),
            (L.SKB_REFCNT, 4), (L.SKB_POOL, 4), (L.SKB_TRUESIZE, 4),
        ]
        spans = sorted((off, off + size) for off, size in offsets)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0
        assert spans[-1][1] <= L.SKB_STRUCT_SIZE
