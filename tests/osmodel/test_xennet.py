"""Bridge and the standard split netfront/netback path."""

import pytest

from repro.configs import build_domU_standard
from repro.osmodel.bridge import Bridge


class TestBridge:
    def test_learning_and_lookup(self):
        bridge = Bridge()
        bridge.learn(b"\x00" * 6, "portA")
        assert bridge.lookup(b"\x00" * 6) == "portA"
        assert bridge.lookup(b"\x01" * 6) is None

    def test_relearning_moves_port(self):
        bridge = Bridge()
        bridge.learn(b"\x02" * 6, "portA")
        bridge.learn(b"\x02" * 6, "portB")
        assert bridge.lookup(b"\x02" * 6) == "portB"
        assert bridge.learned == 2

    def test_flood_on_unknown(self):
        bridge = Bridge()
        bridge.learn(b"\x01" * 6, "a")
        bridge.learn(b"\x02" * 6, "b")
        targets = bridge.forward_targets(b"\x09" * 6, ingress="a")
        assert targets == ["b"]
        assert bridge.floods == 1

    def test_known_unicast_single_target(self):
        bridge = Bridge()
        bridge.learn(b"\x01" * 6, "a")
        bridge.learn(b"\x02" * 6, "b")
        assert bridge.forward_targets(b"\x02" * 6, ingress="a") == ["b"]


class TestSplitPath:
    def test_guest_transmit_reaches_wire(self):
        system = build_domU_standard(n_nics=1)
        front = system.extras["fronts"][0]
        assert front.transmit(600)
        assert system.machine.wire.tx_count == 1
        assert front.tx_packets == 1

    def test_transmit_payload_integrity(self):
        system = build_domU_standard(n_nics=1)
        front = system.extras["fronts"][0]
        system.machine.wire.keep_payloads = True
        payload = bytes(range(256)) * 2
        front.transmit(len(payload), payload=payload)
        frame = system.machine.wire.transmitted[0]
        assert frame[14:14 + len(payload)] == payload
        assert frame[6:12] == front.mac

    def test_grant_ops_balanced(self):
        system = build_domU_standard(n_nics=1)
        front = system.extras["fronts"][0]
        for _ in range(5):
            front.transmit(600)
        table = system.xen.grant_tables[system.guest_kernel.domain.domid]
        assert table.ops["issue"] == 5
        assert table.ops["map"] == 5
        assert table.ops["unmap"] == 5
        assert table.ops["revoke"] == 5
        assert not table.entries      # all revoked

    def test_receive_bridged_to_guest(self):
        system = build_domU_standard(n_nics=1)
        front = system.extras["fronts"][0]
        assert system.receive_packets(4) == 4
        assert front.rx_packets == 4

    def test_rx_unknown_mac_falls_back(self):
        system = build_domU_standard(n_nics=1)
        nic = system.nics[0]
        frame = b"\x0a" * 6 + b"\x00" * 6 + b"\x08\x00" + bytes(600)
        nic.receive(frame)
        nic.flush_interrupts()
        # fell back to the first front
        assert system.extras["fronts"][0].rx_packets == 1

    def test_domain_crossing_charged(self):
        system = build_domU_standard(n_nics=1)
        front = system.extras["fronts"][0]
        before = system.snapshot()
        front.transmit(600)
        delta = system.delta_since(before)
        costs = system.costs
        assert delta["Xen"] >= (costs.domain_switch + costs.grant_map
                                + costs.grant_unmap)
        assert delta["dom0"] >= costs.backend_tx + costs.bridge_forward

    def test_tx_uses_real_driver(self):
        system = build_domU_standard(n_nics=1)
        front = system.extras["fronts"][0]
        before = system.snapshot()
        front.transmit(600)
        assert system.delta_since(before)["e1000"] > 0
