"""Support-routine library: Table-1 routines and the config surface,
invoked the way the driver invokes them (through native calls)."""

import pytest

from repro.isa import assemble
from repro.machine import Machine
from repro.osmodel import FAST_PATH_ROUTINES, Kernel, layout as L
from repro.osmodel.skbuff import SkBuff
from repro.osmodel.support import SupportError
from repro.xen import Hypervisor


@pytest.fixture
def env():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    kernel = Kernel(m, dom0, costs=xen.costs)
    return m, xen, kernel


def call_support(kernel, name, args):
    """Invoke a support routine through the CPU the way driver code does."""
    addr = kernel.support.addresses[name]
    return kernel.machine.cpu.call_function(addr, list(args),
                                            stack_top=kernel.stack_top)


class TestFastPathRoutines:
    def test_registry_covers_table1(self, env):
        _, _, kernel = env
        for name in FAST_PATH_ROUTINES:
            assert name in kernel.support.addresses

    def test_netdev_alloc_skb(self, env):
        m, xen, kernel = env
        ndev = kernel.create_netdev_for_nic(m.add_nic())
        skb_addr = call_support(kernel, "netdev_alloc_skb",
                                [ndev.addr, 1536])
        skb = SkBuff(kernel.memory_view(), skb_addr)
        assert skb.dev == ndev.addr
        assert skb.len == 0

    def test_dev_kfree_skb_any(self, env):
        m, xen, kernel = env
        skb = kernel.alloc_skb(100)
        held = kernel.heap.allocated_bytes
        call_support(kernel, "dev_kfree_skb_any", [skb.addr])
        assert kernel.heap.allocated_bytes < held

    def test_dma_map_single_returns_bus(self, env):
        m, xen, kernel = env
        skb = kernel.alloc_skb(1000)
        bus = call_support(kernel, "dma_map_single",
                           [0, skb.data, 1000, 1])
        assert bus == kernel.domain.aspace.translate(skb.data)

    def test_dma_map_page(self, env):
        m, xen, kernel = env
        assert call_support(kernel, "dma_map_page",
                            [0x7000, 0x40, 100, 1]) == 0x7040

    def test_dma_unmaps_return_zero(self, env):
        m, xen, kernel = env
        assert call_support(kernel, "dma_unmap_single", [0x7000, 100, 1]) == 0
        assert call_support(kernel, "dma_unmap_page", [0x7000, 100, 1]) == 0

    def test_spin_trylock_contention(self, env):
        m, xen, kernel = env
        lock = kernel.heap.alloc(4)
        assert call_support(kernel, "spin_trylock", [lock]) == 1
        assert call_support(kernel, "spin_trylock", [lock]) == 0
        call_support(kernel, "spin_unlock_irqrestore", [lock, 0])
        assert call_support(kernel, "spin_trylock", [lock]) == 1

    def test_spin_unlock_restores_virq(self, env):
        m, xen, kernel = env
        lock = kernel.heap.alloc(4)
        kernel.domain.disable_virq()
        call_support(kernel, "spin_unlock_irqrestore", [lock, 1])
        assert kernel.domain.virq_enabled

    def test_eth_type_trans(self, env):
        m, xen, kernel = env
        ndev = kernel.create_netdev_for_nic(m.add_nic())
        skb = kernel.alloc_skb(100)
        skb.put(60)
        frame = b"\xff" * 6 + b"\x00" * 6 + b"\x08\x06" + b"\x00" * 46
        kernel.memory_view().write_bytes(skb.data, frame)
        proto = call_support(kernel, "eth_type_trans", [skb.addr, ndev.addr])
        assert proto == 0x0806
        skb = SkBuff(kernel.memory_view(), skb.addr)
        assert skb.protocol == 0x0806
        assert skb.len == 60 - L.ETH_HLEN

    def test_costs_charged_to_domain(self, env):
        m, xen, kernel = env
        lock = kernel.heap.alloc(4)
        before = m.account.cycles["dom0"]
        call_support(kernel, "spin_trylock", [lock])
        assert m.account.cycles["dom0"] > before

    def test_trace_records_calls(self, env):
        m, xen, kernel = env
        lock = kernel.heap.alloc(4)
        kernel.start_trace()
        call_support(kernel, "spin_trylock", [lock])
        trace = kernel.stop_trace()
        assert trace == {"spin_trylock"}


class TestConfigRoutines:
    def test_kmalloc_kfree(self, env):
        m, xen, kernel = env
        addr = call_support(kernel, "kmalloc", [256, 0])
        assert kernel.heap.owns(addr)
        call_support(kernel, "kfree", [addr])

    def test_alloc_etherdev_sets_priv(self, env):
        m, xen, kernel = env
        ndev = call_support(kernel, "alloc_etherdev", [L.ADP_SIZE])
        priv = kernel.memory_view().read_u32(ndev + L.NDEV_PRIV)
        assert priv > ndev

    def test_register_unregister_netdev(self, env):
        m, xen, kernel = env
        ndev = kernel.create_netdev_for_nic(m.add_nic())
        call_support(kernel, "register_netdev", [ndev.addr])
        assert ndev.addr in kernel.netdevs
        call_support(kernel, "unregister_netdev", [ndev.addr])
        assert ndev.addr not in kernel.netdevs

    def test_queue_state_helpers(self, env):
        m, xen, kernel = env
        ndev = kernel.create_netdev_for_nic(m.add_nic())
        call_support(kernel, "netif_stop_queue", [ndev.addr])
        assert call_support(kernel, "netif_queue_stopped", [ndev.addr]) == 1
        call_support(kernel, "netif_wake_queue", [ndev.addr])
        assert call_support(kernel, "netif_queue_stopped", [ndev.addr]) == 0

    def test_carrier_helpers(self, env):
        m, xen, kernel = env
        ndev = kernel.create_netdev_for_nic(m.add_nic())
        call_support(kernel, "netif_carrier_on", [ndev.addr])
        assert ndev.carrier_ok
        assert call_support(kernel, "ethtool_op_get_link", [ndev.addr]) == 1
        call_support(kernel, "netif_carrier_off", [ndev.addr])
        assert not ndev.carrier_ok

    def test_request_free_irq(self, env):
        m, xen, kernel = env
        call_support(kernel, "request_irq", [16, 0x1234, 0, 0x5678])
        assert kernel.irq_handlers[16] == (0x1234, 0x5678)
        call_support(kernel, "free_irq", [16, 0x5678])
        assert 16 not in kernel.irq_handlers

    def test_timer_routines(self, env):
        m, xen, kernel = env
        timer = kernel.heap.alloc(L.TIMER_SIZE)
        call_support(kernel, "init_timer", [timer])
        call_support(kernel, "mod_timer", [timer, 500])
        assert timer in kernel.timers
        mem = kernel.memory_view()
        assert mem.read_u32(timer + L.TIMER_ACTIVE) == 1
        call_support(kernel, "del_timer_sync", [timer])
        assert timer not in kernel.timers

    def test_dma_alloc_coherent_writes_handle(self, env):
        m, xen, kernel = env
        out = kernel.heap.alloc(4)
        vaddr = call_support(kernel, "dma_alloc_coherent", [1024, out])
        bus = kernel.memory_view().read_u32(out)
        assert bus == kernel.domain.aspace.translate(vaddr)

    def test_memcpy_memset(self, env):
        m, xen, kernel = env
        a = kernel.heap.alloc(64)
        b = kernel.heap.alloc(64)
        kernel.memory_view().write_bytes(a, b"Z" * 64)
        call_support(kernel, "memcpy_support", [b, a, 64])
        assert kernel.memory_view().read_bytes(b, 64) == b"Z" * 64
        call_support(kernel, "memset_support", [b, 0x41, 8])
        assert kernel.memory_view().read_bytes(b, 8) == b"A" * 8

    def test_printk_logs(self, env):
        m, xen, kernel = env
        msg = kernel.heap.alloc(32)
        kernel.memory_view().write_bytes(msg, b"e1000: link up\x00")
        call_support(kernel, "printk", [msg])
        assert kernel.log == ["e1000: link up"]

    def test_spin_lock_irqsave_disables_virq(self, env):
        m, xen, kernel = env
        lock = kernel.heap.alloc(4)
        flags = call_support(kernel, "spin_lock_irqsave", [lock])
        assert flags == 1
        assert not kernel.domain.virq_enabled
        call_support(kernel, "spin_unlock_irqrestore", [lock, flags])
        assert kernel.domain.virq_enabled

    def test_skb_helpers(self, env):
        m, xen, kernel = env
        skb = kernel.alloc_skb(200)
        call_support(kernel, "skb_reserve", [skb.addr, 16])
        old_tail = call_support(kernel, "skb_put", [skb.addr, 50])
        assert old_tail == skb.head + L.NET_SKB_PAD + 16
        assert call_support(kernel, "skb_headroom", [skb.addr]) == \
            L.NET_SKB_PAD + 16

    def test_pci_state_tracking(self, env):
        m, xen, kernel = env
        call_support(kernel, "pci_enable_device", [0])
        call_support(kernel, "pci_set_master", [0])
        call_support(kernel, "pci_request_regions", [0, 0])
        assert {("enabled", 0), ("master", 0), ("regions", 0)} <= \
            kernel.pci_state
        call_support(kernel, "pci_release_regions", [0])
        assert ("regions", 0) not in kernel.pci_state
