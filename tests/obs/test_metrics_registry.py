"""The metrics registry: counters, histograms, snapshots."""

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_inc_and_direct_mutation(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        c.value += 2
        assert reg.counter("x").value == 7

    def test_snapshot_prefix(self):
        reg = MetricsRegistry()
        reg.counter("svm.hit").value = 3
        reg.counter("xen.switch").value = 1
        assert reg.counters_snapshot("svm.") == {"svm.hit": 3}

    def test_delta_since(self):
        reg = MetricsRegistry()
        reg.counter("a").value = 5
        snap = reg.counters_snapshot()
        reg.counter("a").value = 9
        reg.counter("b").value = 2          # created after the snapshot
        assert reg.delta_since(snap) == {"a": 4, "b": 2}

    def test_reset_prefix_zeroes_in_place(self):
        reg = MetricsRegistry()
        kept = reg.counter("other")
        kept.value = 5
        hot = reg.counter("cycles.Xen")     # a hot path holds this object
        hot.value = 100
        reg.reset("cycles.")
        assert hot.value == 0 and kept.value == 5
        hot.value += 1                       # the cached reference still works
        assert reg.counter("cycles.Xen").value == 1


class TestHistogram:
    def test_observe_stats(self):
        h = Histogram("lat")
        for v in (1, 2, 4, 100):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(26.75)

    def test_power_of_two_buckets(self):
        h = Histogram("lat")
        h.observe(0)
        h.observe(1)
        h.observe(7)
        h.observe(8)
        assert h.buckets == {0: 1, 1: 1, 3: 1, 4: 1}

    def test_quantiles(self):
        h = Histogram("lat")
        for _ in range(99):
            h.observe(10)
        h.observe(1000)
        assert h.quantile(0.5) == 15        # bucket upper bound of 10
        assert h.quantile(1.0) == 1023

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").observe(-1)

    def test_empty_summary(self):
        s = Histogram("x").summary()
        assert s["count"] == 0 and s["p99"] == 0

    def test_registry_snapshot_includes_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("span.tx.cycles").observe(7)
        snap = reg.snapshot()
        assert snap["histograms"]["span.tx.cycles"]["count"] == 1

    def test_reset_replaces_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("span.tx.cycles").observe(7)
        reg.reset("span.")
        assert reg.histogram("span.tx.cycles").count == 0
