"""The metrics registry: counters, histograms, snapshots."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_inc_and_direct_mutation(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        c.value += 2
        assert reg.counter("x").value == 7

    def test_snapshot_prefix(self):
        reg = MetricsRegistry()
        reg.counter("svm.hit").value = 3
        reg.counter("xen.switch").value = 1
        assert reg.counters_snapshot("svm.") == {"svm.hit": 3}

    def test_delta_since(self):
        reg = MetricsRegistry()
        reg.counter("a").value = 5
        snap = reg.counters_snapshot()
        reg.counter("a").value = 9
        reg.counter("b").value = 2          # created after the snapshot
        assert reg.delta_since(snap) == {"a": 4, "b": 2}

    def test_reset_prefix_zeroes_in_place(self):
        reg = MetricsRegistry()
        kept = reg.counter("other")
        kept.value = 5
        hot = reg.counter("cycles.Xen")     # a hot path holds this object
        hot.value = 100
        reg.reset("cycles.")
        assert hot.value == 0 and kept.value == 5
        hot.value += 1                       # the cached reference still works
        assert reg.counter("cycles.Xen").value == 1


class TestHistogram:
    def test_observe_stats(self):
        h = Histogram("lat")
        for v in (1, 2, 4, 100):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(26.75)

    def test_log_linear_buckets(self):
        h = Histogram("lat")
        for v in (0, 1, 7, 8, 9, 15):
            h.observe(v)
        # values < 8 get exact singleton buckets; 8..15 split into 4
        # sub-buckets keyed 4*bit_length + sub
        assert h.buckets == {0: 1, 1: 1, 7: 1, 16: 2, 19: 1}
        assert Histogram.bucket_bound(16) == 9
        assert Histogram.bucket_bound(19) == 15

    def test_quantiles(self):
        h = Histogram("lat")
        for _ in range(99):
            h.observe(10)
        h.observe(1000)
        assert h.quantile(0.5) == 11        # sub-bucket upper bound of 10
        assert h.quantile(1.0) == 1000      # clamped to the observed max

    def test_quantile_bound_is_tight(self):
        # worst case: the smallest value of a sub-bucket reports the
        # sub-bucket's upper bound — at most 25% above the true value
        for v in (8, 33, 1024, 2 ** 20 + 1):
            h = Histogram("lat")
            h.observe(v)
            h.observe(v * 100)              # keep max from clamping p50
            assert v <= h.quantile(0.5) <= 1.25 * v

    def test_reset_in_place(self):
        h = Histogram("lat")
        h.observe(5)
        h.observe(100)
        h.reset()
        assert h.count == 0 and h.total == 0
        assert h.min is None and h.max is None and h.buckets == {}
        h.observe(3)
        assert h.count == 1 and h.quantile(1.0) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").observe(-1)

    def test_empty_summary(self):
        s = Histogram("x").summary()
        assert s["count"] == 0 and s["p99"] == 0

    def test_registry_snapshot_includes_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("span.tx.cycles").observe(7)
        snap = reg.snapshot()
        assert snap["histograms"]["span.tx.cycles"]["count"] == 1

    def test_reset_keeps_histogram_identity(self):
        # hot paths cache the Histogram object; reset must not orphan it
        reg = MetricsRegistry()
        hot = reg.histogram("span.tx.cycles")
        hot.observe(7)
        reg.reset("span.")
        assert reg.histogram("span.tx.cycles") is hot
        assert hot.count == 0
        hot.observe(3)                      # cached reference still live
        assert reg.histogram("span.tx.cycles").count == 1


class TestQuantileProperty:
    """ISSUE 7: reported quantiles must never undershoot the true value
    and never exceed twice it (the log-linear buckets are in fact within
    25%, but 2x is the contract)."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40),
                    min_size=1, max_size=200),
           st.floats(min_value=0.01, max_value=1.0))
    def test_true_quantile_le_reported_le_twice(self, values, q):
        h = Histogram("lat")
        for v in values:
            h.observe(v)
        ordered = sorted(values)
        # the q-quantile element the bucket walk targets: the smallest
        # element whose cumulative count reaches q * n
        true = ordered[math.ceil(q * len(ordered)) - 1]
        reported = h.quantile(q)
        assert true <= reported <= 2 * true or (true == 0 and reported == 0)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40),
                    min_size=1, max_size=200))
    def test_max_quantile_exact(self, values):
        h = Histogram("lat")
        for v in values:
            h.observe(v)
        assert h.quantile(1.0) == max(values)
