"""Exporters and the ``python -m repro.obs`` CLI: trace files, per-packet
span reconstruction, Chrome trace_event output."""

import json

import pytest

from repro.configs import build
from repro.obs import TRACE_SCHEMA, chrome_trace, load_trace, render_spans
from repro.obs.__main__ import main as obs_main


@pytest.fixture(scope="module")
def tx_trace(tmp_path_factory):
    """One traced domU-twin transmit run, saved to disk."""
    path = tmp_path_factory.mktemp("obs") / "tx.json"
    system = build("domU-twin", n_nics=1)
    system.transmit_packets(8)              # warm up untraced
    system.machine.obs.enable_tracing()
    system.transmit_packets(2)
    system.machine.obs.disable_tracing()
    system.machine.obs.save(str(path), meta={
        "config": "domU-twin", "direction": "tx", "packets": 2,
        "cpu_hz": system.machine.cpu_hz,
    })
    return str(path)


class TestTraceFile:
    def test_schema_and_sections(self, tx_trace):
        doc = load_trace(tx_trace)
        assert doc["schema"] == TRACE_SCHEMA
        for key in ("meta", "counters", "histograms", "events", "spans"):
            assert key in doc
        assert doc["meta"]["config"] == "domU-twin"

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError):
            load_trace(str(bad))

    def test_packet_tx_span_reconstruction(self, tx_trace):
        """Acceptance: one netperf tx packet is reconstructable as a
        single correlated span containing its stlb lookups, support
        calls and NIC descriptor writes."""
        doc = load_trace(tx_trace)
        tx_spans = [s for s in doc["spans"] if s["name"] == "packet.tx"]
        assert len(tx_spans) == 2
        span = tx_spans[-1]
        assert span["t1"] is not None and span["t1"] >= span["t0"]
        correlated = [e for e in doc["events"] if e["span"] == span["id"]]
        kinds = {e["kind"] for e in correlated}
        assert "svm.hit" in kinds            # stlb lookups
        assert "support.call" in kinds       # Table-1 support calls
        assert "nic.desc" in kinds           # NIC descriptor write-back
        assert "nic.tx" in kinds             # the frame left the device
        # events stay inside the span's time window
        assert all(span["t0"] <= e["ts"] <= span["t1"] for e in correlated)

    def test_render_spans_text(self, tx_trace):
        doc = load_trace(tx_trace)
        text = render_spans(doc, name="packet.tx", limit=1)
        assert "packet.tx" in text
        assert "svm.hit" in text
        assert "nic.tx" in text


class TestChromeExport:
    def test_chrome_trace_shape(self, tx_trace):
        doc = load_trace(tx_trace)
        out = chrome_trace(doc)
        evs = out["traceEvents"]
        assert evs[0]["ph"] == "M"           # process_name metadata
        xs = [e for e in evs if e["ph"] == "X"]
        assert any(e["name"] == "packet.tx" for e in xs)
        assert all(e["dur"] > 0 for e in xs)
        instants = [e for e in evs if e["ph"] == "i"]
        assert instants and all("span" in e["args"] for e in instants)
        # span.begin/end bookkeeping records must not leak into the export
        assert all(e["name"] not in ("span.begin", "span.end")
                   for e in evs)
        # timestamps are microseconds: cycles * 1e6 / cpu_hz
        cycles0 = min(s["t0"] for s in doc["spans"])
        us0 = min(e["ts"] for e in xs)
        assert us0 == pytest.approx(cycles0 * 1e6 / doc["meta"]["cpu_hz"])

    def test_chrome_json_serializable(self, tx_trace):
        out = chrome_trace(load_trace(tx_trace))
        json.dumps(out)                      # must not raise


class TestCli:
    def test_record_summary_render_chrome(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        rc = obs_main(["record", "--config", "domU-twin", "--packets", "2",
                       "--warmup", "8", "-o", str(trace)])
        assert rc == 0 and trace.exists()
        assert obs_main(["summary", str(trace)]) == 0
        assert obs_main(["render", str(trace), "--span", "packet.tx"]) == 0
        chrome = tmp_path / "t.chrome.json"
        assert obs_main(["chrome", str(trace), "-o", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "packet.tx" in out
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_tail(self, tx_trace, capsys):
        assert obs_main(["tail", tx_trace, "-n", "4"]) == 0
        assert "trace ring tail" in capsys.readouterr().out
