"""Health watchdog: probes, flight-recorder emission, armed recovery.

A :class:`HealthMonitor` probed over a healthy run reports ``ok``;
synthetic fault states (stalled rx queue, open recovery breaker, leaked
span, deferred-virq latency) surface as findings with the right
severity, land in the recovery flight recorder, and — when armed — feed
``recovery.handle_abort`` so a wedged instance is quarantined like a
contained fault.
"""

from repro.core import ParavirtNetDevice, TwinDriverManager
from repro.machine import Machine
from repro.obs.health import (
    HEALTH_SCHEMA,
    SEV_CRITICAL,
    SEV_WARNING,
    VIRQ_DEFER_HISTOGRAM,
    HealthMonitor,
)
from repro.osmodel import Kernel
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def make_twin(**kwargs):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, **kwargs)
    nic = m.add_nic()
    twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    return m, xen, twin, dev, nic


def frame(n=600):
    return GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + bytes(n)


class TestHealthyRun:
    def test_probes_stay_ok_and_report_rolls_up(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        for _ in range(3):
            for _ in range(8):
                assert dev.transmit(700)
                assert m.wire.inject(nic, frame())
            snap = monitor.probe()
            assert snap["ok"]
            assert snap["findings"] == []
        doc = monitor.report()
        assert doc["schema"] == HEALTH_SCHEMA
        assert doc["probes"] == 3 and doc["findings"] == 0 and doc["ok"]
        assert doc["worst_severity"] is None

    def test_healthy_probes_do_not_touch_the_flight_recorder(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        dev.transmit(500)
        monitor.probe()
        assert twin.recovery.flight_records == []


class TestProbes:
    def test_stalled_rx_is_critical(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        monitor.probe()                       # baseline counters
        # synthetically wedge the rx queue: packets queued, no virq moves
        twin._rx_queue.append((dev, 0))
        snap = monitor.probe()
        assert not snap["ok"]
        assert [f["probe"] for f in snap["findings"]] == ["stalled_rx"]
        assert snap["findings"][0]["severity"] == SEV_CRITICAL

    def test_rx_queue_draining_is_not_a_stall(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        monitor.probe()
        twin._rx_queue.append((dev, 0))
        # delivery progressing: the virq counter moved since last probe
        m.obs.registry.counter("xen.virq_coalesced").value += 1
        snap = monitor.probe()
        assert all(f["probe"] != "stalled_rx" for f in snap["findings"])

    def test_stalled_tx_is_a_warning(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        monitor.probe()
        twin._deferred_irqs.append((nic.irq, m.account.total))
        snap = monitor.probe()
        probes = {f["probe"]: f["severity"] for f in snap["findings"]}
        assert probes.get("stalled_tx") == SEV_WARNING
        assert snap["ok"]                     # warning, not critical

    def test_virq_defer_latency_slo(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, virq_defer_slo=1000)
        # the masked-interrupt flow feeds the histogram on replay
        twin.dom0_kernel.domain.disable_virq()
        m.wire.inject(nic, frame())
        m.account.charge("Xen", 5000)         # latency accrues while masked
        twin.dom0_kernel.domain.enable_virq()
        hist = m.obs.registry.histogram(VIRQ_DEFER_HISTOGRAM)
        assert hist.count == 1 and hist.max >= 5000
        snap = monitor.probe()
        latency = [f for f in snap["findings"] if f["probe"] == "virq_latency"]
        assert latency and latency[0]["severity"] == SEV_WARNING
        assert latency[0]["data"]["p99"] > 1000

    def test_virq_defer_within_slo_is_silent(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, virq_defer_slo=10_000_000)
        twin.dom0_kernel.domain.disable_virq()
        m.wire.inject(nic, frame())
        twin.dom0_kernel.domain.enable_virq()
        snap = monitor.probe()
        assert all(f["probe"] != "virq_latency" for f in snap["findings"])

    def test_crash_loop_breaker_is_critical(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        m.obs.registry.counter("recovery.breaker_open").value += 1
        snap = monitor.probe()
        crash = [f for f in snap["findings"] if f["probe"] == "crash_loop"]
        assert crash and crash[0]["severity"] == SEV_CRITICAL
        assert not snap["ok"]

    def test_quarantine_churn_is_a_warning(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, crash_loop_quarantines=2)
        monitor.probe()
        m.obs.registry.counter("recovery.quarantine").value += 2
        snap = monitor.probe()
        crash = [f for f in snap["findings"] if f["probe"] == "crash_loop"]
        assert crash and crash[0]["severity"] == SEV_WARNING

    def test_span_leak_detected_outside_driver(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        tracer = m.obs.tracer
        tracer.enabled = True
        tracer.begin_span("packet.tx")        # opened, never finished
        snap = monitor.probe()
        leaks = [f for f in snap["findings"] if f["probe"] == "span_leak"]
        assert leaks and leaks[0]["data"]["names"] == ["packet.tx"]

    def test_spans_dropped_is_informational(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        monitor.probe()
        m.obs.tracer.spans_dropped += 4
        snap = monitor.probe()
        dropped = [f for f in snap["findings"]
                   if f["probe"] == "spans_dropped"]
        assert dropped and dropped[0]["data"]["dropped"] == 4
        assert snap["ok"]


class TestFlightRecorderAndArming:
    def test_eventful_snapshot_lands_in_flight_recorder(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        monitor.probe()
        twin._rx_queue.append((dev, 0))
        monitor.probe()
        records = twin.recovery.flight_records
        assert len(records) == 1
        kinds = [r["kind"] for r in records[0]]
        assert kinds == ["health.snapshot"]
        assert records[0][0]["schema"] == HEALTH_SCHEMA
        assert not records[0][0]["ok"]

    def test_armed_watchdog_quarantines_on_critical(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, arm_recovery=True)
        monitor.probe()
        twin._rx_queue.append((dev, 0))
        assert not twin.recovery.degraded
        monitor.probe()
        # the watchdog fed recovery: instance quarantined, dom0 path on
        assert twin.recovery.degraded
        assert m.obs.registry.counter("recovery.quarantine").value == 1
        # traffic still flows on the degraded path
        assert dev.transmit(500)

    def test_unarmed_watchdog_only_observes(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, arm_recovery=False)
        monitor.probe()
        twin._rx_queue.append((dev, 0))
        monitor.probe()
        assert not twin.recovery.degraded

    def test_armed_watchdog_leaves_broken_recovery_alone(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, arm_recovery=True)
        twin.recovery.state = "broken"
        monitor.probe()
        twin._rx_queue.append((dev, 0))
        monitor.probe()                       # must not re-enter recovery
        assert m.obs.registry.counter("recovery.quarantine").value == 0

    def test_monitor_without_twin_probes_machine_only(self):
        m = Machine()
        monitor = HealthMonitor(m)
        snap = monitor.probe()
        assert snap["ok"] and snap["findings"] == []


class TestMaintenanceWindow:
    """Planned-handover suppression: a drain the handover accounts for
    is not a stall and must not arm recovery mid-swap — but a stall the
    handover does NOT account for still fires (DESIGN.md §14)."""

    def test_held_backlog_is_not_a_stall(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        monitor.probe()
        # a planned drain holds 3 packets; the probe subtracts them
        twin._rx_queue.extend([(dev, 0)] * 3)
        monitor.enter_maintenance("handover:test", held_backlog=lambda: 3)
        snap = monitor.probe()
        assert snap["ok"]
        assert all(f["probe"] != "stalled_rx" for f in snap["findings"])
        assert monitor.exit_maintenance() == "handover:test"
        # window closed: the same backlog is a stall again
        snap = monitor.probe()
        assert not snap["ok"]
        assert [f["probe"] for f in snap["findings"]] == ["stalled_rx"]

    def test_real_stall_still_fires_inside_the_window(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        monitor.probe()
        # the handover accounts for 2 packets; 5 are actually wedged
        twin._rx_queue.extend([(dev, 0)] * 5)
        monitor.enter_maintenance("handover:test", held_backlog=lambda: 2)
        snap = monitor.probe()
        assert not snap["ok"]
        stalls = [f for f in snap["findings"] if f["probe"] == "stalled_rx"]
        assert stalls and stalls[0]["severity"] == SEV_CRITICAL
        assert stalls[0]["data"]["queued"] == 3   # only the residual
        assert stalls[0]["data"]["held"] == 2

    def test_deferred_irqs_and_latency_blip_are_expected_in_window(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, virq_defer_slo=1)
        monitor.probe()
        twin._deferred_irqs.append((nic.irq, m.account.total))
        m.obs.registry.histogram(VIRQ_DEFER_HISTOGRAM).observe(10_000)
        monitor.enter_maintenance("handover:test")
        snap = monitor.probe()
        assert snap["findings"] == []          # both probes suppressed
        monitor.exit_maintenance()
        snap = monitor.probe()
        probes = {f["probe"] for f in snap["findings"]}
        assert "stalled_tx" in probes and "virq_latency" in probes

    def test_window_records_but_does_not_arm_recovery(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin, arm_recovery=True)
        monitor.probe()
        # a genuinely critical finding inside the window: recorded in
        # the flight recorder but recovery is NOT armed (arming would
        # dismantle the instance mid-swap)
        twin._rx_queue.extend([(dev, 0)] * 4)
        monitor.enter_maintenance("handover:test")
        snap = monitor.probe()
        assert not snap["ok"]
        assert twin.recovery.state == "active"
        assert twin.recovery.flight_records     # still observable
        monitor.exit_maintenance()
        monitor.probe()
        assert twin.recovery.state == "degraded"   # armed again outside

    def test_window_is_exclusive_and_must_be_open_to_close(self):
        m, xen, twin, dev, nic = make_twin()
        monitor = HealthMonitor(m, twin=twin)
        assert not monitor.in_maintenance
        monitor.enter_maintenance("a")
        assert monitor.in_maintenance
        try:
            monitor.enter_maintenance("b")
            raise AssertionError("double enter must raise")
        except RuntimeError:
            pass
        monitor.exit_maintenance()
        try:
            monitor.exit_maintenance()
            raise AssertionError("double exit must raise")
        except RuntimeError:
            pass
