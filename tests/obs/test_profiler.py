"""Cycle-attribution profiler: bit-exact sums, zero-cost disable, and
the symbolization/tagging machinery.

The central invariant (ISSUE 7): per-category sample sums equal the
``cycles.*`` counter movement over the enabled window **bit-exactly**,
for every configuration, both drivers, with and without check elision.
The profiler records by shadowing ``CycleAccount.charge`` with an
instance attribute, so when disabled the account object is structurally
identical to a never-profiled one.
"""

import pytest

from repro.core import ParavirtNetDevice, TwinDriverManager
from repro.drivers import RTL8139_SPEC
from repro.machine import Machine
from repro.metrics.cycles import CATEGORIES, CycleAccount
from repro.obs.prof import PROFILE_SCHEMA, Profiler
from repro.osmodel import Kernel
from repro.workloads.profile import profile_config
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def make_rtl_twin(elide=False):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, driver=RTL8139_SPEC, elide=elide)
    nic = m.add_nic(model="rtl8139")
    twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    return m, xen, twin, dev, nic


def run_profiled_window(m, work):
    """Warmup already done by the caller; profile ``work()`` and return
    (profiler category sums, account counter movement)."""
    prof = m.obs.profiler
    prof.reset()
    prof.enable()
    before = m.account.snapshot()
    work()
    moved = m.account.delta_since(before)
    prof.disable()
    return prof.category_totals(), moved


class TestBitExactAttribution:
    """Sample sums == account movement, to the cycle, for every config."""

    @pytest.mark.parametrize("config", ["linux", "dom0", "domU", "domU-twin"])
    @pytest.mark.parametrize("direction", ["tx", "rx"])
    def test_e1000_configs(self, config, direction):
        # profile_direction itself raises AttributionMismatch on any
        # disagreement; assert the equality here too, explicitly.
        profile = profile_config(config, direction, packets=24, warmup=12,
                                 profiled=True)
        doc = profile.attribution
        assert doc["schema"] == PROFILE_SCHEMA
        for c in CATEGORIES:
            assert doc["categories"].get(c, 0) == profile.cycles.get(c, 0)
        assert doc["total"] == sum(profile.cycles.values())
        assert doc["total"] > 0

    @pytest.mark.parametrize("elide", [False, True])
    def test_e1000_twin_elision(self, elide):
        profile = profile_config("domU-twin", "tx", packets=24, warmup=12,
                                 profiled=True, elide=elide)
        doc = profile.attribution
        anchors = [s for s in doc["samples"] if s["stack"][-1] == "svm.anchor"]
        if elide:
            # elided check sites carry the extra leaf frame
            assert anchors and all(s["layer"] == "e1000" for s in anchors)
        else:
            assert not anchors

    @pytest.mark.parametrize("elide", [False, True])
    def test_rtl8139_twin(self, elide):
        m, xen, twin, dev, nic = make_rtl_twin(elide=elide)
        frame = GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + bytes(600)
        for _ in range(8):                       # warmup outside the window
            assert dev.transmit(600)
            assert m.wire.inject(nic, frame)

        def work():
            for _ in range(16):
                assert dev.transmit(600)
                assert m.wire.inject(nic, frame)

        totals, moved = run_profiled_window(m, work)
        for c in CATEGORIES:
            assert totals.get(c, 0) == moved.get(c, 0)
        assert sum(totals.values()) > 0
        doc = m.obs.profiler.snapshot()
        syms = {s["symbol"] for s in doc["samples"]}
        assert any("rtl8139" in s for s in syms)


class TestZeroCostDisable:
    def test_disabled_account_is_structurally_clean(self):
        profile = profile_config("domU-twin", "tx", packets=8, warmup=4,
                                 profiled=True)
        assert profile.attribution is not None
        # after profile_direction disables the profiler, the account's
        # charge resolves to the plain class method again: nothing in the
        # instance dict, no wrapper anywhere on the hot path
        system_account = CycleAccount()
        assert "charge" not in system_account.__dict__

    def test_enable_installs_and_disable_removes_the_shadow(self):
        m = Machine()
        prof = m.obs.profiler
        assert "charge" not in m.account.__dict__
        prof.enable()
        assert "charge" in m.account.__dict__
        m.account.charge("Xen", 7)
        assert prof.category_totals() == {"Xen": 7}
        prof.disable()
        assert "charge" not in m.account.__dict__
        m.account.charge("Xen", 5)              # not recorded
        assert prof.category_totals() == {"Xen": 7}

    def test_enable_refuses_double_enable(self):
        # ISSUE 8: double-enable used to silently keep the first shadow
        # while a caller believed it had installed a fresh one; now it
        # is refused outright. disable stays idempotent.
        m = Machine()
        prof = m.obs.profiler
        prof.enable()
        shadow = m.account.__dict__["charge"]
        with pytest.raises(RuntimeError):
            prof.enable()
        assert m.account.__dict__["charge"] is shadow
        prof.disable()
        prof.disable()

    def test_unbound_profiler_refuses_to_enable(self):
        with pytest.raises(RuntimeError):
            Profiler().enable()


class TestShadowLayering:
    """ISSUE 8: enable/disable must save and restore any pre-existing
    ``charge`` instance shadow (fault-injection hooks, second
    recorders) instead of deleting the wrong layer."""

    @staticmethod
    def _counting_shadow(account, log):
        base = type(account).charge

        def shadow(category, cycles):
            log.append((category, cycles))
            base(account, category, cycles)

        return shadow

    def test_prior_shadow_survives_enable_disable(self):
        m = Machine()
        prof = m.obs.profiler
        log = []
        hook = self._counting_shadow(m.account, log)
        m.account.charge = hook                  # e.g. fault injection
        prof.enable()
        m.account.charge("Xen", 9)
        # both layers observed the charge, and the account moved once
        assert prof.category_totals() == {"Xen": 9}
        assert log == [("Xen", 9)]
        assert m.account.cycles["Xen"] == 9
        prof.disable()
        # the pre-existing hook is back on top, not deleted
        assert m.account.__dict__["charge"] is hook
        m.account.charge("Xen", 4)
        assert log == [("Xen", 9), ("Xen", 4)]
        assert prof.category_totals() == {"Xen": 9}   # no longer recording

    def test_disable_refuses_foreign_shadow_on_top(self):
        m = Machine()
        prof = m.obs.profiler
        prof.enable()
        prior = m.account.charge                 # the profiler's closure
        log = []
        later = self._counting_shadow(m.account, log)
        m.account.charge = later                 # stacked after enable
        with pytest.raises(RuntimeError):
            prof.disable()
        assert prof.enabled                     # state untouched
        # unwind in the right order and everything comes apart cleanly
        m.account.charge = prior
        prof.disable()
        assert "charge" not in m.account.__dict__

    def test_interleaved_recorders_chain(self):
        # two profilers bound to the same account: the inner one chains
        # through the outer one, so both attribute the same charges and
        # the counters still move exactly once.
        m = Machine()
        outer = m.obs.profiler
        inner = Profiler()
        inner.bind(m.cpu, m.account)
        outer.enable()
        inner.enable()
        m.account.charge("domU", 13)
        assert outer.category_totals() == {"domU": 13}
        assert inner.category_totals() == {"domU": 13}
        assert m.account.cycles["domU"] == 13
        inner.disable()
        m.account.charge("domU", 2)
        assert outer.category_totals() == {"domU": 15}
        assert inner.category_totals() == {"domU": 13}
        outer.disable()
        assert "charge" not in m.account.__dict__


class TestResetAndContext:
    def test_reset_clears_samples_and_rebinds_while_enabled(self):
        m = Machine()
        prof = m.obs.profiler
        prof.enable()
        m.account.charge("Xen", 3)
        prof.reset()
        assert prof.total == 0
        m.account.charge("domU", 11)            # still recording
        assert prof.category_totals() == {"domU": 11}
        prof.disable()

    def test_phase_frames_shape_the_stack(self):
        m = Machine()
        prof = m.obs.profiler
        prof.enable()
        prof.push_phase("xen:hypercall")
        m.account.charge("Xen", 9)
        prof.pop_phase()
        m.account.charge("Xen", 2)
        prof.disable()
        stacks = {tuple(s["stack"]): s["cycles"]
                  for s in prof.snapshot()["samples"]}
        assert stacks[("Xen", "xen:hypercall")] == 9
        assert stacks[("Xen",)] == 2

    def test_tag_sites_keys_on_fall_through_address(self):
        class FakeLoaded:
            next_addrs = [0x1000, 0x1004, 0x1008]

        m = Machine()
        prof = m.obs.profiler
        prof.tag_sites(FakeLoaded(), [0, 2], "svm.anchor")
        assert prof._site_tags == {0x1000: "svm.anchor",
                                   0x1008: "svm.anchor"}


class TestSymbolization:
    def test_driver_samples_resolve_to_function_symbols(self):
        profile = profile_config("domU-twin", "tx", packets=16, warmup=8,
                                 profiled=True)
        syms = {s["symbol"] for s in profile.attribution["samples"]
                if s["layer"] == "e1000" and s["pc"] is not None}
        assert any(s.endswith("e1000_xmit_frame") for s in syms)

    def test_sentinel_pc_maps_to_none(self):
        profile = profile_config("linux", "tx", packets=8, warmup=4,
                                 profiled=True)
        # kernel-model charges happen with no driver code in flight:
        # their pc is the parked sentinel and must not leak a raw address
        no_code = [s for s in profile.attribution["samples"]
                   if s["symbol"].startswith("kernel:")]
        assert no_code and all(s["pc"] is None for s in no_code)
