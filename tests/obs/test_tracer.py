"""The trace ring: wraparound, span nesting, disabled-mode cost."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def make_tracer(**kwargs):
    clock = {"t": 0}

    def tick(n=1):
        clock["t"] += n

    tracer = Tracer(clock=lambda: clock["t"], **kwargs)
    return tracer, tick


class TestRing:
    def test_disabled_emits_nothing(self):
        tracer, _ = make_tracer()
        assert not tracer.enabled
        for _ in range(100):
            tracer.emit("svm.hit", vaddr=0x1000)
        assert tracer.emitted == 0
        assert tracer.events() == []
        assert tracer.begin_span("packet.tx") is None
        tracer.end_span(None)                  # tolerated no-op handle
        assert tracer.spans() == []

    def test_ordered_events(self):
        tracer, tick = make_tracer()
        tracer.enabled = True
        tracer.emit("a")
        tick(5)
        tracer.emit("b", x=1)
        evs = tracer.events()
        assert [e.kind for e in evs] == ["a", "b"]
        assert evs[1].ts == 5 and evs[1].args == {"x": 1}
        assert evs[0].seq == 0 and evs[1].seq == 1

    def test_wraparound_keeps_newest(self):
        tracer, _ = make_tracer(capacity=8)
        tracer.enabled = True
        for i in range(20):
            tracer.emit("k", i=i)
        evs = tracer.events()
        assert len(evs) == 8
        assert [e.args["i"] for e in evs] == list(range(12, 20))
        assert tracer.emitted == 20
        assert tracer.dropped == 12

    def test_exact_capacity_no_drop(self):
        tracer, _ = make_tracer(capacity=4)
        tracer.enabled = True
        for i in range(4):
            tracer.emit("k", i=i)
        assert tracer.dropped == 0
        assert [e.args["i"] for e in tracer.events()] == [0, 1, 2, 3]

    def test_tail(self):
        tracer, _ = make_tracer()
        tracer.enabled = True
        for i in range(10):
            tracer.emit("k", i=i)
        assert [e.args["i"] for e in tracer.tail(3)] == [7, 8, 9]


class TestSpans:
    def test_nesting_and_correlation(self):
        tracer, tick = make_tracer()
        tracer.enabled = True
        outer = tracer.begin_span("packet.tx", len=1500)
        tick(10)
        tracer.emit("svm.hit")
        inner = tracer.begin_span("upcall:netif_stop_queue")
        tick(5)
        tracer.emit("xen.hypercall")
        tracer.end_span(inner)
        tick(5)
        tracer.end_span(outer)

        spans = tracer.spans()
        # children complete before parents
        assert [s.name for s in spans] == ["upcall:netif_stop_queue",
                                           "packet.tx"]
        assert spans[0].parent == outer.id
        assert outer.duration == 20 and inner.duration == 5
        # events carry the innermost open span id
        by_kind = {e.kind: e for e in tracer.events()}
        assert by_kind["svm.hit"].span == outer.id
        assert by_kind["xen.hypercall"].span == inner.id

    def test_span_tree_includes_grandchildren(self):
        tracer, tick = make_tracer()
        tracer.enabled = True
        root = tracer.begin_span("irq")
        child = tracer.begin_span("packet.rx")
        grandchild = tracer.begin_span("upcall:x")
        tracer.end_span(grandchild)
        tracer.end_span(child)
        tracer.end_span(root)
        tree = tracer.span_tree(root)
        assert {s.name for s in tree} == {"irq", "packet.rx", "upcall:x"}

    def test_events_in_span_covers_descendants(self):
        tracer, _ = make_tracer()
        tracer.enabled = True
        root = tracer.begin_span("packet.tx")
        tracer.emit("nic.desc")
        inner = tracer.begin_span("upcall:y")
        tracer.emit("xen.hypercall")
        tracer.end_span(inner)
        tracer.end_span(root)
        kinds = {e.kind for e in tracer.events_in_span(root)}
        assert "nic.desc" in kinds and "xen.hypercall" in kinds

    def test_out_of_order_close_drains_nested(self):
        # exception path: the outer finally fires without the inner one
        tracer, _ = make_tracer()
        tracer.enabled = True
        outer = tracer.begin_span("packet.tx")
        tracer.begin_span("upcall:z")       # never explicitly ended
        tracer.end_span(outer)
        assert tracer.current_span == 0
        assert {s.name for s in tracer.spans()} == {"packet.tx", "upcall:z"}

    def test_span_duration_histogram(self):
        registry = MetricsRegistry()
        clock = {"t": 0}
        tracer = Tracer(clock=lambda: clock["t"], registry=registry)
        tracer.enabled = True
        span = tracer.begin_span("packet.tx")
        clock["t"] = 42
        tracer.end_span(span)
        hist = registry.histogram("span.packet.tx.cycles")
        assert hist.count == 1 and hist.total == 42

    def test_span_capacity_bounds_completed_list(self):
        tracer, _ = make_tracer(capacity=64, span_capacity=3)
        tracer.enabled = True
        for i in range(10):
            tracer.end_span(tracer.begin_span("s", i=i))
        spans = tracer.spans()
        assert len(spans) == 3
        assert [s.args["i"] for s in spans] == [7, 8, 9]
        assert tracer.spans_dropped == 7

    def test_spans_dropped_counter_reaches_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(capacity=64, span_capacity=2, registry=registry)
        tracer.enabled = True
        for i in range(5):
            tracer.end_span(tracer.begin_span("s", i=i))
        assert tracer.spans_dropped == 3
        assert registry.counter("trace.spans_dropped").value == 3

    def test_clear_resets_span_ids(self):
        # repeated bench runs in one process must see identical span ids
        tracer, _ = make_tracer()
        tracer.enabled = True

        def run():
            tracer.end_span(tracer.begin_span("a"))
            tracer.end_span(tracer.begin_span("b"))
            return [s.id for s in tracer.spans()]

        first = run()
        tracer.clear()
        tracer.enabled = True
        assert run() == first == [1, 2]
        assert tracer.spans_dropped == 0


class TestMachineIntegration:
    def test_disabled_tracer_records_nothing_on_real_traffic(self):
        from repro.configs import build
        system = build("domU-twin", n_nics=1)
        assert system.transmit_packets(4) == 4
        tracer = system.machine.obs.tracer
        assert tracer.emitted == 0 and tracer.spans() == []
        # ...but the always-on counters did move
        counters = system.machine.obs.registry.counters_snapshot()
        assert counters["support.dma_map_single"] > 0
        assert counters["cycles.e1000"] > 0

    def test_clock_is_virtual_cycles(self):
        from repro.configs import build
        system = build("domU-twin", n_nics=1)
        obs = system.machine.obs
        obs.enable_tracing()
        system.transmit_packets(1)
        obs.disable_tracing()
        evs = obs.tracer.events()
        assert evs, "tracing enabled but nothing recorded"
        assert evs[-1].ts <= system.machine.account.total
        assert all(a.ts <= b.ts for a, b in zip(evs, evs[1:]))
