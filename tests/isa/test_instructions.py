"""Static instruction classification: register usage, flags, memory kind."""

import pytest

from repro.isa import Imm, Instruction, Label, Mem, Reg, assemble


def ins(text):
    return assemble(text + ("\nt: ret" if "t" in text else "")
                    ).instructions[0]


class TestRegisterUsage:
    def test_mov_reg_reg(self):
        i = ins("movl %eax, %ebx")
        assert i.registers_read() == {"eax"}
        assert i.registers_written() == {"ebx"}

    def test_mov_mem_uses_address_regs(self):
        i = ins("movl 4(%esi,%ecx,2), %eax")
        assert i.registers_read() == {"esi", "ecx"}
        assert i.registers_written() == {"eax"}

    def test_store_reads_value_and_address(self):
        i = ins("movl %eax, (%ebx)")
        assert i.registers_read() == {"eax", "ebx"}
        assert i.registers_written() == set()

    def test_alu_reads_both(self):
        i = ins("addl %ecx, %edx")
        assert i.registers_read() == {"ecx", "edx"}
        assert i.registers_written() == {"edx"}

    def test_cmp_writes_nothing(self):
        i = ins("cmpl %eax, %ebx")
        assert i.registers_written() == set()

    def test_lea_reads_address_only(self):
        i = ins("leal 8(%eax,%ebx,4), %ecx")
        assert i.registers_read() == {"eax", "ebx"}
        assert i.registers_written() == {"ecx"}

    def test_push_reads_esp(self):
        i = ins("pushl %eax")
        assert "esp" in i.registers_read()
        assert "esp" in i.registers_written()

    def test_pop_writes_target_and_esp(self):
        i = ins("popl %edx")
        assert i.registers_written() == {"edx", "esp"}

    def test_call_clobbers_caller_saved(self):
        i = assemble("call f\nf: ret").instructions[0]
        assert {"eax", "ecx", "edx"} <= i.registers_written()

    def test_subregister_maps_to_parent(self):
        i = ins("movb %al, (%ebx)")
        assert "eax" in i.registers_read()

    def test_partial_width_reg_write_reads_parent(self):
        # writing %al preserves the rest of %eax -> counts as a read
        i = ins("movb $1, %al")
        assert "eax" in i.registers_read()

    def test_string_movs_implicit(self):
        i = ins("rep movsl")
        assert i.registers_read() == {"esi", "edi", "ecx"}
        assert i.registers_written() == {"esi", "edi", "ecx"}

    def test_string_stos_implicit(self):
        i = ins("stosb")
        assert i.registers_read() == {"edi", "eax"}
        assert i.registers_written() == {"edi"}

    def test_string_lods_writes_eax(self):
        i = ins("lodsl")
        assert "eax" in i.registers_written()

    def test_xchg_reads_and_writes_both(self):
        i = ins("xchgl %eax, %ebx")
        assert i.registers_read() == {"eax", "ebx"}
        assert i.registers_written() == {"eax", "ebx"}


class TestFlags:
    @pytest.mark.parametrize("text,writes", [
        ("addl $1, %eax", True),
        ("cmpl $1, %eax", True),
        ("testl %eax, %eax", True),
        ("incl %eax", True),
        ("shrl $2, %eax", True),
        ("movl $1, %eax", False),
        ("leal 4(%eax), %ebx", False),
        ("pushl %eax", False),
    ])
    def test_writes_flags(self, text, writes):
        assert ins(text).writes_flags is writes

    def test_jcc_reads_flags(self):
        i = assemble("je t\nt: nop").instructions[0]
        assert i.reads_flags

    def test_mov_does_not_read_flags(self):
        assert not ins("movl %eax, %ebx").reads_flags


class TestMemoryAccessKind:
    @pytest.mark.parametrize("text,kind", [
        ("movl (%eax), %ebx", "read"),
        ("movl %ebx, (%eax)", "write"),
        ("addl %ebx, (%eax)", "rw"),
        ("addl (%eax), %ebx", "read"),
        ("cmpl (%eax), %ebx", "read"),
        ("incl (%eax)", "rw"),
        ("pushl (%eax)", "read"),
        ("popl (%eax)", "write"),
        ("leal (%eax), %ebx", None),
        ("movl %eax, %ebx", None),
    ])
    def test_kinds(self, text, kind):
        assert ins(text).memory_access_kind() == kind

    def test_stack_relative_detection(self):
        assert Mem(disp=8, base="esp").is_stack_relative
        assert Mem(disp=-4, base="ebp").is_stack_relative
        assert not Mem(disp=8, base="eax").is_stack_relative
        assert not Mem(symbol="counter").is_stack_relative


class TestControlFlow:
    def test_classification(self):
        program = assemble("jmp t\ncall t\nje t\nret\nt: nop")
        jmp, call, je, ret, nop = program.instructions
        assert jmp.is_jump and not jmp.is_conditional
        assert call.is_call and call.is_control_flow
        assert je.is_conditional and je.is_jump
        assert ret.is_return
        assert not nop.is_control_flow

    def test_format_roundtrip_operand_order(self):
        i = ins("movl 8(%eax,%ecx,4), %ebx")
        assert i.format() == "movl 8(%eax,%ecx,4), %ebx"

    def test_invalid_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction("bogus", ())

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Instruction("mov", (Imm(1), Reg("eax")), size=3)
