"""Binary encoding: round trips (hand-written and property-based),
instruction lengths, address layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    Imm,
    Instruction,
    Label,
    Mem,
    Program,
    Reg,
    assemble,
    code_size,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    instruction_length,
    layout,
)

# ---------------------------------------------------------------------------
# hypothesis strategies for random (valid) instructions
# ---------------------------------------------------------------------------

regs = st.sampled_from(["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi",
                        "edi"])
imm32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
symbols = st.one_of(st.none(), st.sampled_from(["sym_a", "data_b", "__stlb"]))


@st.composite
def mem_operands(draw):
    return Mem(
        disp=draw(imm32),
        base=draw(st.one_of(st.none(), regs)),
        index=draw(st.one_of(st.none(), regs)),
        scale=draw(st.sampled_from([1, 2, 4, 8])),
        symbol=draw(symbols),
    )


@st.composite
def random_instructions(draw):
    kind = draw(st.sampled_from(["alu", "mov", "push", "string", "flow"]))
    if kind == "alu":
        mnem = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                     "cmp", "test"]))
        src = draw(st.one_of(st.builds(Imm, imm32), st.builds(Reg, regs),
                             mem_operands()))
        dst = st.builds(Reg, regs) if isinstance(src, Mem) else \
            draw(st.sampled_from([st.builds(Reg, regs), mem_operands()]))
        dst = draw(dst) if not isinstance(dst, (Reg, Mem)) else dst
        return Instruction(mnem, (src, dst), size=draw(
            st.sampled_from([1, 2, 4])))
    if kind == "mov":
        return Instruction("mov", (draw(st.builds(Reg, regs)),
                                   draw(mem_operands())),
                           size=draw(st.sampled_from([1, 2, 4])))
    if kind == "push":
        return Instruction("push", (draw(st.one_of(
            st.builds(Imm, imm32), st.builds(Reg, regs), mem_operands()
        )),))
    if kind == "string":
        return Instruction(
            draw(st.sampled_from(["movs", "stos", "lods", "cmps", "scas"])),
            (), size=draw(st.sampled_from([1, 2, 4])),
            prefix=draw(st.sampled_from([None, "rep", "repe", "repne"])),
        )
    return Instruction(
        draw(st.sampled_from(["jmp", "call", "je", "jne"])),
        (Label(draw(st.sampled_from(["t1", "t2", "far_target"]))),),
    )


class TestInstructionRoundTrip:
    @given(random_instructions())
    @settings(max_examples=300)
    def test_roundtrip(self, instr):
        data = encode_instruction(instr)
        decoded, consumed = decode_instruction(data)
        assert consumed == len(data)
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.size == instr.size
        assert decoded.prefix == instr.prefix
        assert decoded.operands == instr.operands

    def test_length_matches_encoding(self):
        instr = Instruction("mov", (Imm(7), Reg("eax")))
        assert instruction_length(instr) == len(encode_instruction(instr))

    def test_symbolic_mem_encodes_symbol(self):
        instr = Instruction("mov", (Mem(symbol="counter", disp=4), Reg("eax")))
        decoded, _ = decode_instruction(encode_instruction(instr))
        assert decoded.operands[0].symbol == "counter"
        assert decoded.operands[0].disp == 4

    def test_indirect_flag_preserved(self):
        instr = Instruction("call", (Reg("eax"),), indirect=True)
        decoded, _ = decode_instruction(encode_instruction(instr))
        assert decoded.indirect

    def test_high_address_displacement(self):
        # addresses above 2**31 must survive (canonicalised two's-complement)
        instr = Instruction("mov", (Mem(disp=0xC9000000), Reg("eax")))
        decoded, _ = decode_instruction(encode_instruction(instr))
        assert decoded.operands[0].disp & 0xFFFFFFFF == 0xC9000000


class TestProgramRoundTrip:
    SOURCE = """
.globl f
f:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    addl $4, %eax
    cmpl $100, %eax
    jae big
    rep stosl
big:
    popl %ebp
    ret
"""

    def test_program_roundtrip(self):
        program = assemble(self.SOURCE)
        data = encode_program(program)
        again = decode_program(data, labels=program.labels)
        assert [i.format() for i in again.instructions] == \
               [i.format() for i in program.instructions]

    def test_code_size_consistent(self):
        program = assemble(self.SOURCE)
        assert code_size(program) == len(encode_program(program))

    def test_layout_monotonic_and_disjoint(self):
        program = assemble(self.SOURCE)
        addrs = layout(program, 0x1000)
        assert addrs[0] == 0x1000
        for i in range(1, len(addrs)):
            expected = addrs[i - 1] + instruction_length(
                program.instructions[i - 1])
            assert addrs[i] == expected

    def test_layout_base_shifts_uniformly(self):
        # the constant-offset property §5.1.2 relies on
        program = assemble(self.SOURCE)
        a = layout(program, 0x1000)
        b = layout(program, 0x90000)
        assert all(y - x == 0x8F000 for x, y in zip(a, b))

    def test_variable_length_encoding(self):
        program = assemble("nop\nmovl $1, %eax\nmovl counter, %eax")
        lengths = [instruction_length(i) for i in program.instructions]
        assert len(set(lengths)) > 1


class TestRandomProgramRoundTrip:
    """Whole-*program* round trips over randomly assembled instruction
    streams — encode_program/decode_program must agree with the
    per-instruction layout for arbitrary valid mixes, not just the
    hand-written fixture above."""

    @given(st.lists(random_instructions(), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_program_roundtrip(self, instrs):
        program = Program(instructions=list(instrs), name="rand")
        data = encode_program(program)
        again = decode_program(data)
        assert [i.format() for i in again.instructions] == \
               [i.format() for i in program.instructions]

    @given(st.lists(random_instructions(), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_code_size_and_layout_agree(self, instrs):
        program = Program(instructions=list(instrs), name="rand")
        data = encode_program(program)
        assert code_size(program) == len(data)
        addrs = layout(program, 0x4000)
        assert len(addrs) == len(instrs)
        sizes = [instruction_length(i) for i in instrs]
        assert addrs[-1] + sizes[-1] - addrs[0] == len(data)
