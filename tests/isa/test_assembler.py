"""Assembler parsing: operands, directives, labels, sizes, errors."""

import pytest

from repro.isa import AssemblerError, Imm, Label, Mem, Reg, assemble
from repro.isa.assembler import Assembler


def one(text, constants=None):
    program = assemble(text, constants=constants)
    assert len(program.instructions) == 1
    return program.instructions[0]


class TestOperandParsing:
    def test_immediate_decimal(self):
        ins = one("movl $42, %eax")
        assert ins.operands[0] == Imm(42)

    def test_immediate_hex(self):
        ins = one("movl $0xff00, %eax")
        assert ins.operands[0] == Imm(0xFF00)

    def test_immediate_negative(self):
        ins = one("addl $-8, %esp")
        assert ins.operands[0] == Imm(-8)

    def test_immediate_symbol(self):
        ins = one("movl $handler, %eax")
        assert ins.operands[0] == Imm(0, symbol="handler")

    def test_immediate_symbol_plus_offset(self):
        ins = one("movl $handler+8, %eax")
        assert ins.operands[0] == Imm(8, symbol="handler")

    def test_register(self):
        ins = one("movl %eax, %ebx")
        assert ins.operands == (Reg("eax"), Reg("ebx"))

    def test_mem_base_only(self):
        ins = one("movl (%eax), %ebx")
        assert ins.operands[0] == Mem(base="eax")

    def test_mem_disp_base(self):
        ins = one("movl 12(%eax), %ebx")
        assert ins.operands[0] == Mem(disp=12, base="eax")

    def test_mem_negative_disp(self):
        ins = one("movl -4(%ebp), %eax")
        assert ins.operands[0] == Mem(disp=-4, base="ebp")

    def test_mem_base_index_scale(self):
        ins = one("movl 8(%eax,%ecx,4), %ebx")
        assert ins.operands[0] == Mem(disp=8, base="eax", index="ecx",
                                      scale=4)

    def test_mem_index_default_scale(self):
        ins = one("movl (%eax,%ecx), %ebx")
        assert ins.operands[0] == Mem(base="eax", index="ecx", scale=1)

    def test_mem_absolute_symbol(self):
        ins = one("movl counter, %eax")
        assert ins.operands[0] == Mem(symbol="counter")

    def test_mem_symbol_with_base(self):
        ins = one("movl table(%ecx), %eax")
        assert ins.operands[0] == Mem(symbol="table", base="ecx")

    def test_mem_symbol_plus_disp(self):
        ins = one("movl table+4(%ecx), %eax")
        assert ins.operands[0] == Mem(symbol="table", disp=4, base="ecx")

    def test_constant_folding(self):
        ins = one("movl FIELD(%eax), %ebx", constants={"FIELD": 24})
        assert ins.operands[0] == Mem(disp=24, base="eax")

    def test_constant_in_immediate(self):
        ins = one("cmpl $SIZE, %eax", constants={"SIZE": 64})
        assert ins.operands[0] == Imm(64)

    def test_constant_sum(self):
        ins = one("movl $A+B, %eax", constants={"A": 3, "B": 4})
        assert ins.operands[0] == Imm(7)

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblerError):
            one("movl %foo, %eax")


class TestMnemonics:
    def test_size_suffixes(self):
        assert one("movb $1, %al").size == 1
        assert one("movw $1, %ax").size == 2
        assert one("movl $1, %eax").size == 4

    def test_movzbl_source_width(self):
        ins = one("movzbl (%eax), %ebx")
        assert ins.mnemonic == "movzb"
        assert ins.size == 1

    def test_movzwl_source_width(self):
        ins = one("movzwl (%eax), %ebx")
        assert ins.mnemonic == "movzw"
        assert ins.size == 2

    def test_string_with_prefix(self):
        ins = one("rep movsl")
        assert ins.mnemonic == "movs"
        assert ins.prefix == "rep"
        assert ins.size == 4

    def test_repe_normalised(self):
        assert one("repz cmpsb").prefix == "repe"
        assert one("repnz scasb").prefix == "repne"

    def test_string_requires_suffix(self):
        with pytest.raises(AssemblerError):
            one("rep movs")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            one("frobl %eax, %ebx")

    def test_suffix_on_jump_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmpl out\nout: nop")

    def test_indirect_call_register(self):
        ins = one("call *%eax")
        assert ins.indirect
        assert ins.operands == (Reg("eax"),)

    def test_indirect_call_memory(self):
        ins = one("call *8(%esi)")
        assert ins.indirect
        assert ins.operands[0] == Mem(disp=8, base="esi")

    def test_direct_call_is_label(self):
        program = assemble("call helper\nhelper: ret")
        assert program.instructions[0].operands == (Label("helper"),)


class TestArity:
    @pytest.mark.parametrize("text", [
        "movl %eax",
        "addl %eax",
        "pushl %eax, %ebx",
        "ret %eax",
        "incl",
        "cmpl %eax",
    ])
    def test_wrong_arity_rejected(self, text):
        with pytest.raises(AssemblerError):
            one(text)

    def test_two_memory_operands_rejected(self):
        with pytest.raises(AssemblerError):
            one("movl (%eax), (%ebx)")


class TestLabelsAndDirectives:
    def test_label_indexing(self):
        program = assemble("nop\nfoo:\nnop\nbar: nop")
        assert program.labels == {"foo": 1, "bar": 2}

    def test_trailing_label(self):
        program = assemble("nop\nend:")
        assert program.labels["end"] == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_undefined_jump_target_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_call_to_import_allowed(self):
        program = assemble("call external_fn\nret")
        assert "external_fn" in program.imports()

    def test_globl(self):
        program = assemble(".globl f\nf: ret")
        assert program.globals_ == ("f",)

    def test_comm(self):
        program = assemble(".comm stats, 16\nret")
        assert program.comm == {"stats": 16}

    def test_comm_with_constant_size(self):
        program = assemble(".comm buf, N", constants={"N": 128})
        assert program.comm == {"buf": 128}

    def test_comments_stripped(self):
        program = assemble("nop  # comment\nnop ; other\n# full line\n")
        assert len(program.instructions) == 2

    def test_unsupported_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".data")

    def test_dot_local_labels(self):
        program = assemble(".Lloop: jmp .Lloop")
        assert ".Lloop" in program.labels


class TestRoundTrip:
    def test_to_text_reassembles(self):
        source = """
.globl f
.comm counter, 4
f:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    incl counter
    cmpl $0, %eax
    je out
    rep movsl
    call *%eax
out:
    ret
"""
        program = assemble(source)
        text = program.to_text()
        again = assemble(text)
        assert [i.format() for i in again.instructions] == \
               [i.format() for i in program.instructions]
        assert again.labels == program.labels
        assert again.comm == program.comm
