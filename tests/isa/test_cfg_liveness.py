"""Control-flow graph construction and register liveness analysis."""

import pytest

from repro.isa import ControlFlowGraph, LivenessAnalysis, assemble


class TestCfg:
    def test_straight_line_single_block(self):
        p = assemble("movl $1, %eax\naddl $2, %eax\nret")
        cfg = ControlFlowGraph(p)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].end == 3

    def test_branch_splits_blocks(self):
        p = assemble("""
            cmpl $0, %eax
            je skip
            incl %ebx
        skip:
            ret
        """)
        cfg = ControlFlowGraph(p)
        assert sorted(cfg.blocks) == [0, 2, 3]
        assert cfg.blocks[0].successors == [2, 3]
        assert cfg.blocks[2].successors == [3]
        assert cfg.blocks[3].successors == []

    def test_loop_back_edge(self):
        p = assemble("""
        top:
            decl %ecx
            jne top
            ret
        """)
        cfg = ControlFlowGraph(p)
        assert 0 in cfg.blocks[0].successors or 0 in cfg.blocks[
            cfg.block_of(1).start].successors

    def test_ret_has_no_successors(self):
        p = assemble("ret\nnop")
        cfg = ControlFlowGraph(p)
        assert cfg.blocks[0].successors == []

    def test_call_falls_through(self):
        # a call does not end a basic block: the ret after it is in the
        # same block, which then has no successors
        p = assemble("call f\nret\nf: ret")
        cfg = ControlFlowGraph(p)
        assert cfg.block_of(0).end == 2
        assert cfg.block_of(0).successors == []

    def test_indirect_jump_conservative(self):
        p = assemble("""
        a:  nop
            jmp *%eax
        b:  ret
        """)
        cfg = ControlFlowGraph(p)
        block = cfg.block_of(1)
        # all label targets are possible successors
        assert set(block.successors) >= {0, 2}

    def test_indirect_jump_sets_unknown_successors(self):
        p = assemble("""
        a:  nop
            jmp *%eax
        b:  ret
        """)
        cfg = ControlFlowGraph(p)
        assert cfg.block_of(1).unknown_successors
        # the flag marks the over-approximation, not ordinary blocks
        assert not cfg.block_of(2).unknown_successors

    def test_direct_control_flow_has_known_successors(self):
        p = assemble("je t\ncall f\nt: ret\nf: ret")
        cfg = ControlFlowGraph(p)
        assert not any(b.unknown_successors for b in cfg.blocks.values())

    def test_block_of_lookup(self):
        p = assemble("nop\nnop\nje t\nnop\nt: ret")
        cfg = ControlFlowGraph(p)
        assert cfg.block_of(1).start == 0
        assert cfg.block_of(3).start == 3
        with pytest.raises(KeyError):
            cfg.block_of(99)

    def test_reverse_postorder_starts_at_entry(self):
        p = assemble("je t\nnop\nt: ret")
        cfg = ControlFlowGraph(p)
        order = cfg.reverse_postorder()
        assert order[0] == 0
        assert set(order) == set(cfg.blocks)

    def test_predecessors(self):
        p = assemble("je t\nnop\nt: ret")
        cfg = ControlFlowGraph(p)
        target = cfg.block_of(2)
        assert sorted(target.predecessors) == [0, 1]


class TestLiveness:
    def test_dead_after_overwrite(self):
        p = assemble("""
            movl $1, %eax
            movl $2, %eax
            movl %eax, %ebx
            ret
        """)
        la = LivenessAnalysis(p)
        # eax written at 0 is dead (overwritten at 1 without a read)
        assert "eax" not in la.live_out[0] or "eax" in la.live_in[1]
        # between 1 and 2, eax is live
        assert "eax" in la.live_out[1]

    def test_live_through_branch(self):
        p = assemble("""
            movl $5, %ecx
            cmpl $0, %eax
            je use
            nop
        use:
            movl %ecx, %edx
            ret
        """)
        la = LivenessAnalysis(p)
        assert "ecx" in la.live_out[0]
        assert "ecx" in la.live_in[3]     # through the fallthrough block

    def test_loop_keeps_counter_live(self):
        p = assemble("""
        top:
            addl %ecx, %eax
            decl %ecx
            jne top
            ret
        """)
        la = LivenessAnalysis(p)
        assert "ecx" in la.live_in[0]
        assert "ecx" in la.live_out[2]    # back edge

    def test_free_registers_exclude_live(self):
        p = assemble("""
            movl $1, %esi
            movl (%ebx), %eax
            addl %esi, %eax
            ret
        """)
        la = LivenessAnalysis(p)
        free = la.free_registers_at(1)
        assert "esi" not in free          # live across
        assert "ebx" not in free          # used by the instruction
        assert "eax" not in free          # written by the instruction

    def test_free_registers_at_dead_point(self):
        p = assemble("""
            movl (%ebx), %eax
            ret
        """)
        la = LivenessAnalysis(p)
        free = la.free_registers_at(0)
        # ecx and edx are caller-saved, not used, dead at ret
        assert "ecx" in free
        assert "edx" in free

    def test_callee_saved_live_at_ret(self):
        p = assemble("movl $0, %eax\nret")
        la = LivenessAnalysis(p)
        # conservative: callee-saved registers must survive to ret
        assert "ebx" in la.live_out[0]
        assert "esi" in la.live_out[0]

    def test_call_keeps_callee_saved_live_through(self):
        p = assemble("""
            movl $1, %ebx
            call helper
            movl %ebx, %eax
            ret
        """)
        la = LivenessAnalysis(p)
        assert "ebx" in la.live_in[1]

    def test_indirect_jump_all_live(self):
        p = assemble("""
        a:  nop
            jmp *%eax
        b:  ret
        """)
        la = LivenessAnalysis(p)
        assert la.free_registers_at(0) == ()

    def test_mem_base_register_not_free(self):
        p = assemble("movl %eax, 8(%edi)\nret")
        la = LivenessAnalysis(p)
        assert "edi" not in la.free_registers_at(0)
        assert "eax" not in la.free_registers_at(0)
