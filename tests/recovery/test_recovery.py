"""Fault containment & automatic twin-driver recovery.

These tests drive the full quarantine -> degraded -> re-verify ->
reload state machine of :mod:`repro.core.recovery` through real traffic:
transient SVM faults injected mid-transmit, mid-receive and mid-upcall
are contained (the guest never sees an exception), traffic keeps
flowing on the degraded dom0 path, and the hypervisor instance comes
back after a bounded backoff. Crash loops open the circuit breaker.
"""

import pytest

from repro.core import (
    ParavirtNetDevice,
    RecoveryPolicy,
    SvmProtectionFault,
    TwinDriverManager,
)
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def make_twin(policy=None, upcall_routines=(), tracing=False):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, recovery_policy=policy,
                             upcall_routines=upcall_routines)
    nic = m.add_nic()
    twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    if tracing:
        m.obs.enable_tracing()
    return m, xen, twin, dev, nic


def rx_frame(payload=b"\x00" * 700):
    return GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + payload


class TestTransmitContainment:
    def test_transient_fault_mid_transmit_is_contained(self):
        # a huge backoff freezes the state machine in "degraded" so the
        # intermediate state is observable
        policy = RecoveryPolicy(backoff_initial=10_000)
        m, xen, twin, dev, nic = make_twin(policy=policy)
        for _ in range(5):
            assert dev.transmit(700)
        twin.svm.inject_fault()
        # the faulting packet is served on the degraded dom0 path: the
        # guest sees a successful transmit, not an exception
        assert dev.transmit(700)
        assert m.wire.tx_count == 6
        r = twin.recovery
        assert r.state == "degraded"
        snap = r.counters_snapshot()
        assert snap["abort"] == 1 and snap["quarantine"] == 1
        assert snap["degraded_tx"] == 1

    def test_reload_after_backoff_restores_fast_path(self):
        m, xen, twin, dev, nic = make_twin()
        for _ in range(5):
            assert dev.transmit(700)
        twin.svm.inject_fault()
        # degraded operations (the tx plus its completion interrupts)
        # count down the backoff; the default policy reloads within a
        # couple of packets
        assert dev.transmit(700)
        for _ in range(3):
            if not twin.recovery.degraded:
                break
            assert dev.transmit(700)
        r = twin.recovery
        assert r.state == "active"
        snap = r.counters_snapshot()
        assert snap["reload_attempt"] == 1
        assert snap["reload_success"] == 1 and snap["recovered"] == 1
        # traffic is back on the hypervisor instance
        before = twin.hyp_driver.invocations
        sent = m.wire.tx_count
        for _ in range(5):
            assert dev.transmit(700)
        assert twin.hyp_driver.invocations >= before + 5
        assert m.wire.tx_count == sent + 5

    def test_degraded_payload_integrity(self):
        m, xen, twin, dev, nic = make_twin()
        m.wire.keep_payloads = True
        payload = bytes(range(256)) * 3
        twin.svm.inject_fault()
        assert dev.transmit(len(payload), payload=payload)
        frame = m.wire.transmitted[0]
        assert frame[6:12] == GUEST_MAC
        assert frame[14:] == payload


class TestReceiveContainment:
    def test_transient_fault_mid_receive_is_contained(self):
        m, xen, twin, dev, nic = make_twin()
        dev.keep_rx_payloads = True
        for _ in range(5):
            assert m.wire.inject(nic, rx_frame())
        assert dev.rx_packets == 5
        twin.svm.inject_fault()
        assert m.wire.inject(nic, rx_frame())   # contained: no exception
        snap = twin.recovery.counters_snapshot()
        assert snap["abort"] == 1 and snap["quarantine"] == 1
        assert snap["degraded_rx"] >= 1
        # keep the stream going on the degraded path and through recovery
        payload = b"post-recovery" * 40
        for _ in range(4):
            assert m.wire.inject(nic, rx_frame())
        assert m.wire.inject(nic, rx_frame(payload))
        assert twin.recovery.state == "active"
        # at worst the mid-fault frame is lost; everything else arrives,
        # demultiplexed to the guest by MAC on either path
        assert dev.rx_packets >= 10
        assert dev.rx_payloads[-1] == payload


class TestUpcallContainment:
    def test_fault_mid_upcall_is_contained(self):
        # spin_unlock_irqrestore served via upcall; dom0 masks virqs, so
        # the synchronous delivery blocks and the upcall aborts cleanly
        m, xen, twin, dev, nic = make_twin(
            upcall_routines={"spin_unlock_irqrestore"})
        for _ in range(3):
            assert dev.transmit(700)
        twin.dom0_kernel.domain.disable_virq()
        assert dev.transmit(700)        # contained, served degraded
        r = twin.recovery
        assert r.degraded or r.state == "active"
        assert twin.upcalls.in_flight == 0
        from repro.core import UpcallAborted
        cause = r.last_cause
        from repro.core import DriverAborted
        if isinstance(cause, DriverAborted):
            cause = cause.cause
        assert isinstance(cause, UpcallAborted)
        # quarantine re-enabled dom0 virqs: the system fully recovers
        while r.degraded and not r.broken:
            assert dev.transmit(700)
        assert r.state == "active"
        assert dev.transmit(700)


class TestCrashLoopBreaker:
    def test_breaker_opens_and_traffic_survives(self):
        policy = RecoveryPolicy(backoff_initial=1, breaker_threshold=3,
                                max_reload_attempts=50,
                                stable_invocations=1000)
        m, xen, twin, dev, nic = make_twin(policy=policy)
        for _ in range(3):
            assert dev.transmit(700)
        sent = 3
        for _ in range(100):
            if twin.recovery.broken:
                break
            if twin.recovery.state == "active":
                twin.svm.inject_fault()
            assert dev.transmit(700)
            sent += 1
        r = twin.recovery
        assert r.broken
        snap = r.counters_snapshot()
        assert snap["breaker_open"] == 1
        # every relapse counted; no reloads after the breaker opened
        reloads = snap["reload_attempt"]
        for _ in range(10):
            assert dev.transmit(700)
            sent += 1
        assert r.counters_snapshot()["reload_attempt"] == reloads
        assert m.wire.tx_count == sent

    def test_max_reload_attempts_opens_breaker(self):
        # reloads that keep failing verification exhaust the attempt
        # budget even without fast relapses
        policy = RecoveryPolicy(backoff_initial=1, breaker_threshold=100,
                                max_reload_attempts=2,
                                stable_invocations=0)
        m, xen, twin, dev, nic = make_twin(policy=policy)
        assert dev.transmit(700)

        def failing_reload(verify_report=None):
            raise RuntimeError("simulated load failure")

        twin.reload_hyp_driver = failing_reload
        twin.svm.inject_fault()
        for _ in range(20):
            if twin.recovery.broken:
                break
            assert dev.transmit(700)
        r = twin.recovery
        assert r.broken
        snap = r.counters_snapshot()
        assert snap["reload_attempt"] == 2
        assert snap["reload_failure"] == 2


class TestNoStaleState:
    def test_quarantine_leaves_no_translation_reachable(self):
        policy = RecoveryPolicy(backoff_initial=10_000)   # stay degraded
        m, xen, twin, dev, nic = make_twin(policy=policy)
        for _ in range(5):
            assert dev.transmit(700)
        assert twin.svm.chains and twin.svm.mappings
        pages = list(twin.svm.chains)
        twin.svm.inject_fault()
        assert dev.transmit(700)
        assert twin.recovery.degraded
        # no chain, mapping or table entry survives the quarantine
        assert twin.svm.chains == {} and twin.svm.mappings == {}
        for page in pages:
            assert twin.svm.lookup_fast(page) is None

    def test_retranslation_reruns_permission_check(self):
        policy = RecoveryPolicy(backoff_initial=10_000)
        m, xen, twin, dev, nic = make_twin(policy=policy)
        for _ in range(5):
            assert dev.transmit(700)
        page = next(iter(twin.svm.chains))
        twin.svm.inject_fault()
        assert dev.transmit(700)
        checked = []
        orig = twin.svm._check_permitted
        twin.svm._check_permitted = \
            lambda p: (checked.append(p), orig(p))[1]
        twin.svm.translate(page)
        assert checked == [page]

    def test_upcall_frames_and_locks_cleaned(self):
        m, xen, twin, dev, nic = make_twin(
            upcall_routines={"spin_unlock_irqrestore"})
        for _ in range(3):
            assert dev.transmit(700)
        twin.dom0_kernel.domain.disable_virq()
        assert dev.transmit(700)
        # the abort happened between spin_trylock and the (upcalled)
        # unlock: quarantine force-released the lock and re-enabled virqs
        assert twin.hyp_support.held_locks == set()
        assert twin.dom0_kernel.domain.virq_enabled
        assert twin.hyp_support.pool.outstanding == set()


class TestObservability:
    def test_flight_recorder_and_span(self):
        m, xen, twin, dev, nic = make_twin(tracing=True)
        for _ in range(3):
            assert dev.transmit(700)
        twin.svm.inject_fault()
        assert dev.transmit(700)
        r = twin.recovery
        assert len(r.flight_records) == 1
        assert r.flight_records[0]            # trace tail captured
        spans = m.obs.tracer.spans("recovery")
        assert len(spans) == 1
        assert spans[0].args["cause"] == "SvmProtectionFault"
        # the quarantine event is correlated with the recovery span
        quarantines = [ev for ev in m.obs.tracer.events()
                       if ev.kind == "recovery.quarantine"]
        assert quarantines and quarantines[0].span == spans[0].id
        assert isinstance(r.last_cause, SvmProtectionFault)

    def test_registry_counters_visible(self):
        m, xen, twin, dev, nic = make_twin()
        twin.svm.inject_fault()
        assert dev.transmit(700)
        dump = {c.name: c.value
                for c in m.obs.registry.counters("recovery.")}
        assert dump["recovery.abort"] == 1
        assert dump["recovery.quarantine"] == 1
        assert dump["recovery.degraded_tx"] == 1


class TestPostRecoveryThroughput:
    def measure(self, m, dev, n=60):
        snap = m.account.snapshot()
        for _ in range(n):
            assert dev.transmit(1000)
        return sum(m.account.delta_since(snap).values()) / n

    def test_within_five_percent_of_clean(self):
        m_clean, _, _, dev_clean, _ = make_twin()
        for _ in range(10):
            assert dev_clean.transmit(1000)
        clean = self.measure(m_clean, dev_clean)

        m, xen, twin, dev, nic = make_twin()
        for _ in range(10):
            assert dev.transmit(1000)
        twin.svm.inject_fault()
        assert dev.transmit(1000)
        while twin.recovery.degraded:
            assert dev.transmit(1000)
        for _ in range(10):                    # re-warm the stlb
            assert dev.transmit(1000)
        recovered = self.measure(m, dev)
        assert recovered == pytest.approx(clean, rel=0.05)


class TestNetperfAcceptance:
    def test_injected_fault_during_netperf_stream(self):
        # the ISSUE acceptance bar: an SvmProtectionFault injected in the
        # middle of a netperf-style transmit stream no longer terminates
        # the simulation — the stream completes and the twin recovers
        from repro.configs import build
        system = build("domU-twin", n_nics=1)
        assert system.transmit_packets(20) == 20
        system.twin.svm.inject_fault()
        assert system.transmit_packets(40) == 40
        assert system.twin.recovery.state == "active"
        snap = system.twin.recovery.counters_snapshot()
        assert snap["recovered"] == 1
        assert system.packets_on_wire == 60
