"""Configurations, profiles, the web workload model, and the fileset."""

import pytest

from repro.configs import FRAME_PAYLOAD, build
from repro.workloads import (
    FileSet,
    RequestShape,
    capacity_for,
    profile_direction,
    run_webserver_curve,
)
from repro.workloads.webserver import delivered_rate


@pytest.fixture(scope="module", params=["linux", "dom0", "domU",
                                        "domU-twin"])
def any_system(request):
    return build(request.param, n_nics=1)


class TestConfigs:
    def test_transmit_moves_packets(self, any_system):
        before = any_system.packets_on_wire
        assert any_system.transmit_packets(16) == 16
        assert any_system.packets_on_wire == before + 16

    def test_receive_delivers(self, any_system):
        before = any_system.packets_delivered
        assert any_system.receive_packets(16) == 16
        assert any_system.packets_delivered == before + 16

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            build("vmware")

    def test_multi_nic_round_robin(self):
        system = build("linux", n_nics=3)
        system.transmit_packets(9)
        for nic in system.nics:
            assert nic.stats.tx_packets == 3


class TestProfiles:
    def test_linux_has_no_xen_cycles(self):
        system = build("linux", n_nics=1)
        prof = profile_direction(system, "tx", packets=64, warmup=32)
        assert prof.per_packet["Xen"] == 0
        assert prof.per_packet["domU"] == 0
        assert prof.per_packet["e1000"] > 0

    def test_twin_tx_has_no_dom0_cycles(self):
        system = build("domU-twin", n_nics=1)
        prof = profile_direction(system, "tx", packets=64, warmup=32)
        assert prof.per_packet["dom0"] == 0
        assert prof.per_packet["domU"] > 0
        assert prof.per_packet["Xen"] > 0

    def test_domU_pays_everywhere(self):
        system = build("domU", n_nics=1)
        prof = profile_direction(system, "tx", packets=64, warmup=32)
        for category in ("dom0", "domU", "Xen", "e1000"):
            assert prof.per_packet[category] > 0, category

    def test_bad_direction_rejected(self):
        system = build("linux", n_nics=1)
        with pytest.raises(ValueError):
            profile_direction(system, "sideways")

    def test_steady_state_is_stable(self):
        system = build("linux", n_nics=1)
        a = profile_direction(system, "tx", packets=128, warmup=64)
        b = profile_direction(system, "tx", packets=128, warmup=0)
        assert abs(a.total_per_packet - b.total_per_packet) < \
            0.02 * a.total_per_packet


class TestFileSet:
    def test_mean_size_matches_specweb99(self):
        fs = FileSet()
        assert 13_000 < fs.mean_size < 16_500

    def test_36_files_in_four_classes(self):
        fs = FileSet()
        assert len(fs.files) == 36
        sizes = {f.size for f in fs.files}
        assert min(sizes) == 102
        assert max(sizes) == 921_600

    def test_sampling_reproducible(self):
        fs = FileSet()
        assert fs.sample_sizes(50, seed=3) == fs.sample_sizes(50, seed=3)

    def test_sampled_mean_near_analytic(self):
        fs = FileSet()
        sizes = fs.sample_sizes(4000, seed=11)
        mean = sum(sizes) / len(sizes)
        assert abs(mean - fs.mean_size) < 0.25 * fs.mean_size


class TestRequestShape:
    def test_small_response_minimum_packets(self):
        shape = RequestShape(100)
        assert shape.data_packets == 1
        assert shape.tx_packets == 4
        assert shape.rx_packets == 4

    def test_large_response_segments(self):
        shape = RequestShape(14_480)
        assert shape.data_packets == (14_480 + 290 + 1447) // 1448

    def test_response_bits(self):
        assert RequestShape(1000).response_bits == (1000 + 290) * 8


class TestOverloadModel:
    def test_below_capacity_linear(self):
        assert delivered_rate(500, 1000, 0.8) == 500

    def test_at_capacity(self):
        assert delivered_rate(1000, 1000, 0.8) == 1000

    def test_overload_degrades_toward_floor(self):
        just_over = delivered_rate(1100, 1000, 0.8)
        far_over = delivered_rate(100_000, 1000, 0.8)
        assert just_over < 1000
        assert far_over < just_over
        assert far_over >= 0.8 * 1000 * 0.99

    def test_monotone_in_offered_load_until_peak(self):
        prev = 0
        for rate in range(100, 1000, 100):
            now = delivered_rate(rate, 1000, 0.8)
            assert now >= prev
            prev = now


class TestWebServerModel:
    def test_capacity_ordering(self):
        costs = {"tx": 8000.0, "rx": 12000.0}
        linux = capacity_for("linux", packet_costs=costs)
        domU = capacity_for("domU", packet_costs=dict(
            (k, v * 2.8) for k, v in costs.items()))
        assert linux.requests_per_second > domU.requests_per_second

    def test_curve_peaks_at_saturation(self):
        costs = {"tx": 8000.0, "rx": 12000.0}
        curve = run_webserver_curve("linux",
                                    rates=range(1000, 20001, 1000),
                                    packet_costs=costs)
        cap = curve.capacity.requests_per_second
        for point in curve.points:
            assert point.delivered_rps <= cap + 1e-6
        assert curve.peak_mbps == pytest.approx(
            curve.capacity.saturation_mbps, rel=0.05)

    def test_cpu_utilization_saturates(self):
        costs = {"tx": 8000.0, "rx": 12000.0}
        curve = run_webserver_curve("dom0", rates=[100, 50_000],
                                    packet_costs=costs)
        assert curve.points[0].cpu_utilization < 0.1
        assert curve.points[1].cpu_utilization == 1.0
