"""Cycle accounts and throughput arithmetic."""

import pytest

from repro.metrics import (
    CycleAccount,
    PacketProfile,
    ThroughputResult,
    improvement_factor,
    throughput_from_cycles,
)


class TestCycleAccount:
    def test_charge_and_total(self):
        acct = CycleAccount()
        acct.charge("Xen", 100)
        acct.charge("e1000", 50)
        assert acct.total == 150
        assert acct.cycles["Xen"] == 100

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            CycleAccount().charge("userspace", 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CycleAccount().charge("Xen", -1)

    def test_snapshot_delta(self):
        acct = CycleAccount()
        acct.charge("dom0", 10)
        snap = acct.snapshot()
        acct.charge("dom0", 5)
        acct.charge("domU", 7)
        delta = acct.delta_since(snap)
        assert delta == {"dom0": 5, "domU": 7, "Xen": 0, "e1000": 0}

    def test_merge(self):
        a, b = CycleAccount(), CycleAccount()
        a.charge("Xen", 1)
        b.charge("Xen", 2)
        a.count("pkts", 3)
        b.count("pkts", 4)
        merged = a.merged(b)
        assert merged.cycles["Xen"] == 3
        assert merged.events["pkts"] == 7

    def test_reset(self):
        acct = CycleAccount()
        acct.charge("Xen", 5)
        acct.reset()
        assert acct.total == 0

    def test_reset_clears_events_too(self):
        acct = CycleAccount()
        acct.count("pkts", 9)
        acct.reset()
        assert acct.events == {}
        acct.count("pkts", 1)
        assert acct.events == {"pkts": 1}

    def test_reset_preserves_hot_path_counters(self):
        # hot paths cache Counter objects: reset must zero them in place,
        # not replace them, or later charges would vanish
        acct = CycleAccount()
        acct.charge("Xen", 5)
        acct.reset()
        acct.charge("Xen", 2)
        assert acct.cycles["Xen"] == 2

    def test_merge_does_not_mutate_inputs(self):
        a, b = CycleAccount(), CycleAccount()
        a.charge("Xen", 1)
        b.charge("dom0", 2)
        merged = a.merged(b)
        merged.charge("Xen", 100)
        assert a.cycles["Xen"] == 1
        assert b.cycles["dom0"] == 2

    def test_merge_with_empty(self):
        a = CycleAccount()
        a.charge("e1000", 3)
        a.count("irqs", 2)
        merged = a.merged(CycleAccount())
        assert merged.cycles["e1000"] == 3
        assert merged.events == {"irqs": 2}

    def test_delta_since_empty_snapshot(self):
        acct = CycleAccount()
        acct.charge("domU", 4)
        delta = acct.delta_since({})
        assert delta == {"dom0": 0, "domU": 4, "Xen": 0, "e1000": 0}

    def test_shared_registry_isolated_namespaces(self):
        # a machine-shared registry: reset() must only touch the
        # account's own cycles./event. namespaces
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        other = registry.counter("svm.hyp-stlb.miss")
        other.value = 7
        acct = CycleAccount(registry=registry)
        acct.charge("Xen", 3)
        acct.reset()
        assert other.value == 7
        assert acct.total == 0

    def test_events_roundtrip(self):
        acct = CycleAccount()
        acct.count("tx")
        acct.count("tx", 2)
        assert acct.events == {"tx": 3}


class TestPacketProfile:
    def test_per_packet(self):
        p = PacketProfile(config="x", direction="tx", packets=10,
                          cycles={"Xen": 1000, "e1000": 500})
        assert p.per_packet["Xen"] == 100
        assert p.total_per_packet == 150

    def test_zero_packets(self):
        p = PacketProfile(config="x", direction="tx", packets=0, cycles={})
        assert p.total_per_packet == 0


class TestThroughput:
    def test_cpu_bound(self):
        # 30000 cycles/packet @3GHz = 100k pps = 1200 Mb/s < line rate
        r = throughput_from_cycles("t", "tx", 30_000)
        assert r.throughput_mbps == pytest.approx(1200, rel=0.01)
        assert r.cpu_utilization == 1.0

    def test_line_bound(self):
        # 1000 cycles/packet: CPU could do 36 Gb/s, line caps at 4690
        r = throughput_from_cycles("t", "tx", 1000)
        assert r.throughput_mbps == pytest.approx(4690, rel=0.01)
        assert r.cpu_utilization < 0.2

    def test_cpu_scaled_units(self):
        r = throughput_from_cycles("t", "tx", 5903)
        # the paper's native Linux case: line-limited at ~77% CPU
        assert r.cpu_utilization == pytest.approx(0.769, abs=0.02)
        assert r.cpu_scaled_mbps > r.throughput_mbps

    def test_improvement_factor(self):
        fast = throughput_from_cycles("a", "tx", 10_000)
        slow = throughput_from_cycles("b", "tx", 24_000)
        assert improvement_factor(fast, slow) == pytest.approx(2.4, rel=0.01)

    def test_single_nic_cap(self):
        r = throughput_from_cycles("t", "tx", 1000, nics=1)
        assert r.throughput_mbps == pytest.approx(938, rel=0.01)

    def test_invalid_cycles(self):
        with pytest.raises(ValueError):
            throughput_from_cycles("t", "tx", 0)
