"""Hypervisor: domains, switches, events, virq flag, softirqs, grants."""

import pytest

from repro.machine import Machine
from repro.xen import CostModel, GrantError, Hypervisor


def make_xen():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    guest = xen.create_domain("guest")
    return m, xen, dom0, guest


class TestDomains:
    def test_dom0_unique(self):
        m, xen, dom0, guest = make_xen()
        with pytest.raises(ValueError):
            xen.create_domain("dom0b", is_dom0=True)

    def test_first_domain_is_current(self):
        m, xen, dom0, guest = make_xen()
        assert xen.current is dom0
        assert m.cpu.address_space is dom0.aspace

    def test_categories(self):
        m, xen, dom0, guest = make_xen()
        assert dom0.category == "dom0"
        assert guest.category == "domU"


class TestSwitching:
    def test_switch_charges_once(self):
        m, xen, dom0, guest = make_xen()
        before = m.account.cycles["Xen"]
        xen.switch_to(guest)
        assert m.account.cycles["Xen"] - before == xen.costs.domain_switch
        assert m.cpu.address_space is guest.aspace

    def test_switch_to_self_free(self):
        m, xen, dom0, guest = make_xen()
        before = m.account.cycles["Xen"]
        xen.switch_to(dom0)
        assert m.account.cycles["Xen"] == before

    def test_run_in_domain_restores(self):
        m, xen, dom0, guest = make_xen()
        xen.switch_to(guest)
        seen = []
        xen.run_in_domain(dom0, lambda: seen.append(xen.current.name))
        assert seen == ["dom0"]
        assert xen.current is guest
        assert m.cpu.address_space is guest.aspace

    def test_run_in_domain_charges_two_switches(self):
        m, xen, dom0, guest = make_xen()
        xen.switch_to(guest)
        before = m.account.cycles["Xen"]
        xen.run_in_domain(dom0, lambda: None)
        assert (m.account.cycles["Xen"] - before
                == 2 * xen.costs.domain_switch)

    def test_run_in_domain_accounting_category(self):
        m, xen, dom0, guest = make_xen()
        xen.switch_to(guest)
        before = m.account.cycles["dom0"]
        xen.run_in_domain(dom0,
                          lambda: m.cpu.charge_raw(100))
        assert m.account.cycles["dom0"] - before == 100


class TestEvents:
    def test_synchronous_delivery(self):
        m, xen, dom0, guest = make_xen()
        got = []
        port = dom0.bind_event_channel(lambda p: got.append(p))
        xen.send_event(dom0, port, synchronous=True)
        assert got == [port]

    def test_async_queued_until_schedule(self):
        m, xen, dom0, guest = make_xen()
        got = []
        port = guest.bind_event_channel(lambda p: got.append(p))
        xen.send_event(guest, port)
        assert got == []
        xen.schedule_domain(guest)
        assert got == [port]

    def test_virq_flag_defers_synchronous(self):
        m, xen, dom0, guest = make_xen()
        got = []
        port = dom0.bind_event_channel(lambda p: got.append(p))
        dom0.disable_virq()
        xen.send_event(dom0, port, synchronous=True)
        assert got == []
        dom0.enable_virq()
        xen.schedule_domain(dom0)
        assert got == [port]

    def test_unknown_port_raises(self):
        m, xen, dom0, guest = make_xen()
        with pytest.raises(KeyError):
            xen.send_event(dom0, 99, synchronous=True)

    def test_hypercall_charges(self):
        m, xen, dom0, guest = make_xen()
        before = m.account.cycles["Xen"]
        xen.hypercall("test")
        assert m.account.cycles["Xen"] - before == xen.costs.hypercall
        assert xen.hypercalls == 1


class TestSoftirqs:
    def test_softirq_runs_in_order(self):
        m, xen, dom0, guest = make_xen()
        order = []
        xen.raise_softirq(lambda: order.append(1))
        xen.raise_softirq(lambda: order.append(2))
        assert order == []
        xen.run_softirqs()
        assert order == [1, 2]

    def test_softirq_raised_during_run(self):
        m, xen, dom0, guest = make_xen()
        order = []

        def first():
            order.append(1)
            xen.raise_softirq(lambda: order.append(2))

        xen.raise_softirq(first)
        xen.run_softirqs()
        assert order == [1, 2]


class TestIrqRouting:
    def test_dispatch_charges_and_routes(self):
        m, xen, dom0, guest = make_xen()
        got = []
        xen.register_irq_handler(16, got.append)
        before = m.account.cycles["Xen"]
        m.intc.raise_irq(16)
        assert got == [16]
        assert (m.account.cycles["Xen"] - before
                == xen.costs.interrupt_virtualization)

    def test_unhandled_irq_ignored(self):
        m, xen, dom0, guest = make_xen()
        m.intc.raise_irq(42)    # no handler: swallowed after charging


class TestGrantOps:
    def test_grant_lifecycle(self):
        m, xen, dom0, guest = make_xen()
        table = xen.grant_tables[guest.domid]
        ref = table.issue(frame=7, grantee=dom0.domid)
        frame = xen.grant_map(guest, ref, dom0)
        assert frame == 7
        xen.grant_unmap(guest, ref, dom0)
        table.revoke(ref)

    def test_map_wrong_grantee_rejected(self):
        m, xen, dom0, guest = make_xen()
        other = xen.create_domain("other")
        table = xen.grant_tables[guest.domid]
        ref = table.issue(frame=7, grantee=dom0.domid)
        with pytest.raises(GrantError):
            xen.grant_map(guest, ref, other)

    def test_double_map_rejected(self):
        m, xen, dom0, guest = make_xen()
        table = xen.grant_tables[guest.domid]
        ref = table.issue(frame=7, grantee=dom0.domid)
        xen.grant_map(guest, ref, dom0)
        with pytest.raises(GrantError):
            xen.grant_map(guest, ref, dom0)

    def test_revoke_while_mapped_rejected(self):
        m, xen, dom0, guest = make_xen()
        table = xen.grant_tables[guest.domid]
        ref = table.issue(frame=7, grantee=dom0.domid)
        xen.grant_map(guest, ref, dom0)
        with pytest.raises(GrantError):
            table.revoke(ref)

    def test_grant_copy_checks_access(self):
        m, xen, dom0, guest = make_xen()
        table = xen.grant_tables[guest.domid]
        ref = table.issue(frame=9, grantee=dom0.domid)
        assert xen.grant_copy_packet(guest, ref, dom0) == 9
        with pytest.raises(GrantError):
            xen.grant_copy_packet(guest, 1234, dom0)

    def test_ops_counted(self):
        m, xen, dom0, guest = make_xen()
        table = xen.grant_tables[guest.domid]
        ref = table.issue(frame=1, grantee=dom0.domid)
        xen.grant_map(guest, ref, dom0)
        xen.grant_unmap(guest, ref, dom0)
        table.revoke(ref)
        assert table.ops == {"issue": 1, "map": 1, "unmap": 1, "copy": 0,
                             "revoke": 1}


class TestCostModel:
    def test_copy_cost_linear(self):
        c = CostModel()
        assert c.copy_cost(0) == c.copy_setup
        assert c.copy_cost(1000) == int(c.copy_setup + c.copy_per_byte * 1000)

    def test_support_cost_default(self):
        c = CostModel()
        assert c.support_cost("netif_rx") > 0
        assert c.support_cost("unknown_routine_xyz") == 200

    def test_overrides_are_isolated(self):
        c = CostModel(domain_switch=5)
        assert c.domain_switch == 5
        assert CostModel().domain_switch != 5
