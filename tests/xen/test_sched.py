"""Credit scheduler: vCPU run queues, determinism, stealing, refill."""

import pytest

from repro.machine import Machine
from repro.xen import CREDIT_REFILL, Hypervisor


def make_smp(vcpus=2, guests=4):
    m = Machine()
    xen = Hypervisor(m, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    doms = [xen.create_domain(f"g{i}") for i in range(guests)]
    return m, xen, dom0, doms


class TestVCpus:
    def test_vcpus_requires_at_least_one(self):
        with pytest.raises(ValueError):
            Hypervisor(Machine(), vcpus=0)

    def test_default_is_single_vcpu(self):
        xen = Hypervisor(Machine())
        assert len(xen.vcpus) == 1

    def test_dom0_pins_to_vcpu0(self):
        m, xen, dom0, doms = make_smp()
        assert dom0.vcpu is xen.vcpus[0]

    def test_guests_spread_round_robin(self):
        m, xen, dom0, doms = make_smp(vcpus=2, guests=4)
        assert [d.vcpu.id for d in doms] == [0, 1, 0, 1]

    def test_current_is_per_vcpu(self):
        m, xen, dom0, doms = make_smp()
        xen.switch_to(doms[0])
        assert xen.vcpus[0].current is doms[0]
        xen.activate_vcpu(xen.vcpus[1])
        assert xen.current is None  # vCPU 1 never ran anything
        xen.switch_to(doms[1])
        xen.activate_vcpu(xen.vcpus[0])
        assert xen.current is doms[0]  # vCPU 0's world intact

    def test_activate_vcpu_restores_address_space(self):
        m, xen, dom0, doms = make_smp()
        xen.switch_to(doms[0])
        xen.activate_vcpu(xen.vcpus[1])
        xen.switch_to(doms[1])
        assert m.cpu.address_space is doms[1].aspace
        xen.activate_vcpu(xen.vcpus[0])
        assert m.cpu.address_space is doms[0].aspace

    def test_activate_same_vcpu_keeps_world_token(self):
        m, xen, dom0, doms = make_smp()
        tok = m.cpu.world_token
        xen.activate_vcpu(xen.vcpus[0])
        assert m.cpu.world_token == tok
        xen.activate_vcpu(xen.vcpus[1])
        assert m.cpu.world_token == tok + 1


class TestScheduling:
    def test_one_quantum_runs_one_work_item(self):
        m, xen, dom0, doms = make_smp()
        ran = []
        xen.scheduler.queue_work(doms[0], lambda: ran.append("a"))
        xen.scheduler.queue_work(doms[0], lambda: ran.append("b"))
        assert xen.scheduler.run_quantum(doms[0].vcpu)
        assert ran == ["a"]
        assert xen.scheduler.run_quantum(doms[0].vcpu)
        assert ran == ["a", "b"]

    def test_idle_vcpu_runs_nothing(self):
        m, xen, dom0, doms = make_smp()
        assert not xen.scheduler.run_quantum(xen.vcpus[0])

    def test_pick_prefers_most_credits(self):
        m, xen, dom0, doms = make_smp(vcpus=1, guests=2)
        ran = []
        xen.scheduler.queue_work(doms[0], lambda: ran.append("g0"))
        xen.scheduler.queue_work(doms[1], lambda: ran.append("g1"))
        doms[1].credits += 1000
        xen.scheduler.run_quantum(xen.vcpus[0])
        assert ran == ["g1"]

    def test_tie_breaks_by_least_recently_scheduled_then_domid(self):
        m, xen, dom0, doms = make_smp(vcpus=1, guests=2)
        ran = []
        doms[0].credits = doms[1].credits = 500
        # never-scheduled tie: lowest domid first
        xen.scheduler.queue_work(doms[1], lambda: ran.append("g1"))
        xen.scheduler.queue_work(doms[0], lambda: ran.append("g0"))
        xen.scheduler.run_quantum(xen.vcpus[0])
        assert ran == ["g0"]
        # g0 just ran, so at equal credits g1 is least recently scheduled
        doms[0].credits = doms[1].credits = 500
        xen.scheduler.queue_work(doms[0], lambda: ran.append("g0"))
        xen.scheduler.run_quantum(xen.vcpus[0])
        assert ran == ["g0", "g1"]

    def test_credits_debited_by_consumed_cycles(self):
        m, xen, dom0, doms = make_smp()
        xen.scheduler.queue_work(
            doms[0], lambda: m.account.charge("domU", 12345))
        before = doms[0].credits
        xen.scheduler.run_quantum(doms[0].vcpu)
        consumed = before - doms[0].credits
        # the debit covers the guest work plus the Xen overhead the
        # quantum itself charged (pick, switch, tick)
        assert consumed >= 12345
        assert consumed < 12345 + 10_000

    def test_refill_when_all_runnable_exhausted(self):
        m, xen, dom0, doms = make_smp(vcpus=1, guests=2)
        for d in doms:
            xen.scheduler.queue_work(d, lambda: None)
            d.credits = -100
        xen.scheduler.run_quantum(xen.vcpus[0])
        assert xen.scheduler.refills >= 1
        assert all(d.credits > 0 or not d.run_work for d in doms)

    def test_work_stealing_migrates_domain(self):
        m, xen, dom0, doms = make_smp(vcpus=2, guests=2)
        # both guests queue work, but land them all on vCPU 0's queue
        victim, thief = xen.vcpus[0], xen.vcpus[1]
        for d in doms:
            if d.vcpu is not victim:
                d.vcpu.runq.remove(d)
                victim.runq.append(d)
                d.vcpu = victim
            xen.scheduler.queue_work(d, lambda: None)
        assert xen.scheduler.run_quantum(thief)
        assert xen.scheduler.steals == 1
        stolen = [d for d in doms if d.vcpu is thief]
        assert len(stolen) == 1

    def test_steal_charges_xen(self):
        m, xen, dom0, doms = make_smp(vcpus=2, guests=1)
        guest = doms[0]
        assert guest.vcpu is xen.vcpus[0]
        xen.scheduler.queue_work(guest, lambda: None)
        before = m.account.cycles["Xen"]
        xen.scheduler.run_quantum(xen.vcpus[1])
        delta = m.account.cycles["Xen"] - before
        assert delta >= xen.costs.sched_steal

    def test_run_drains_all_work(self):
        m, xen, dom0, doms = make_smp(vcpus=2, guests=4)
        ran = []
        for i, d in enumerate(doms):
            for j in range(3):
                xen.scheduler.queue_work(
                    d, lambda i=i, j=j: ran.append((i, j)))
        quanta = xen.scheduler.run()
        assert quanta == 12
        assert len(ran) == 12
        # per-domain order preserved
        for i in range(4):
            assert [j for (g, j) in ran if g == i] == [0, 1, 2]

    def test_schedule_is_deterministic(self):
        def trace():
            m, xen, dom0, doms = make_smp(vcpus=2, guests=4)
            ran = []
            for i, d in enumerate(doms):
                for j in range(4):
                    xen.scheduler.queue_work(
                        d, lambda i=i: ran.append(i))
            xen.scheduler.run()
            return ran, dict(m.account.cycles)

        first, second = trace(), trace()
        assert first == second

    def test_refill_amount_is_credit_refill(self):
        m, xen, dom0, doms = make_smp(vcpus=1, guests=1)
        doms[0].credits = 0
        xen.scheduler.queue_work(doms[0], lambda: None)
        xen.scheduler._maybe_refill()
        assert doms[0].credits == CREDIT_REFILL
