"""Regression tests for the single-vCPU bugs the SMP port flushed out:

* ``run_softirqs`` must drain to empty (a softirq raised from inside a
  softirq runs in the same drain) with a bounded-iterations guard;
* ``deliver_coalesced_virq`` must not charge cycles or count an event
  when the target's virq is masked — the unmask-hook replay is the one
  delivery that pays;
* ``grant_unmap`` must reject a double unmap with a typed error and
  charge nothing for the rejected call.
"""

import pytest

from repro.machine import Machine
from repro.xen import (
    SOFTIRQ_DRAIN_LIMIT,
    GrantDoubleUnmap,
    GrantError,
    Hypervisor,
    SoftirqStorm,
)


def make_xen():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    guest = xen.create_domain("guest")
    return m, xen, dom0, guest


class TestSoftirqDrain:
    def test_softirq_raised_inside_softirq_runs_in_same_drain(self):
        m, xen, dom0, guest = make_xen()
        ran = []

        def inner():
            ran.append("inner")

        def outer():
            ran.append("outer")
            xen.raise_softirq(inner)

        xen.raise_softirq(outer)
        xen.run_softirqs()
        # one drain ran both, in raise order, and left the queue empty
        assert ran == ["outer", "inner"]
        assert not xen._softirqs

    def test_nested_run_softirqs_does_not_steal_the_queue(self):
        m, xen, dom0, guest = make_xen()
        ran = []

        def second():
            ran.append("second")

        def first():
            ran.append("first")
            xen.raise_softirq(second)
            # a handler that synchronously re-enters the drain (the old
            # continuation bug) must not run 'second' out of order here
            xen.run_softirqs()
            assert ran == ["first"]

        xen.raise_softirq(first)
        xen.run_softirqs()
        assert ran == ["first", "second"]

    def test_softirq_storm_raises_instead_of_hanging(self):
        m, xen, dom0, guest = make_xen()
        count = [0]

        def storm():
            count[0] += 1
            xen.raise_softirq(storm)

        xen.raise_softirq(storm)
        with pytest.raises(SoftirqStorm):
            xen.run_softirqs()
        assert count[0] == SOFTIRQ_DRAIN_LIMIT
        # the latch is released, so the hypervisor can drain again later
        xen._softirqs.clear()
        ran = []
        xen.raise_softirq(lambda: ran.append("after"))
        xen.run_softirqs()
        assert ran == ["after"]


class TestMaskedCoalescedVirq:
    def test_masked_virq_not_charged_or_counted(self):
        m, xen, dom0, guest = make_xen()
        guest.disable_virq()
        before = m.account.cycles["Xen"]
        count = m.obs.registry.counter("xen.virq_coalesced").value
        assert xen.deliver_coalesced_virq(guest, 8) is False
        assert m.account.cycles["Xen"] == before
        assert m.obs.registry.counter("xen.virq_coalesced").value == count

    def test_unmasked_virq_charged_and_counted_once(self):
        m, xen, dom0, guest = make_xen()
        before = m.account.cycles["Xen"]
        count = m.obs.registry.counter("xen.virq_coalesced").value
        assert xen.deliver_coalesced_virq(guest, 8) is True
        expected = (xen.costs.virq_coalesced
                    + 7 * xen.costs.virq_coalesced_per_packet)
        assert m.account.cycles["Xen"] - before == expected
        assert m.obs.registry.counter("xen.virq_coalesced").value == count + 1

    def test_mask_then_replay_counts_exactly_once(self):
        m, xen, dom0, guest = make_xen()
        count = m.obs.registry.counter("xen.virq_coalesced").value
        guest.disable_virq()
        assert xen.deliver_coalesced_virq(guest, 4) is False
        # the replay a parked batch gets after unmask is the one charge
        guest.enable_virq()
        assert xen.deliver_coalesced_virq(guest, 4) is True
        assert m.obs.registry.counter("xen.virq_coalesced").value == count + 1


class TestGrantDoubleUnmap:
    def grant(self, xen, dom0, guest):
        table = xen.grant_tables[guest.domid]
        ref = table.issue(frame=1234, grantee=dom0.domid)
        xen.grant_map(guest, ref, dom0)
        return table, ref

    def test_double_unmap_raises_typed_error(self):
        m, xen, dom0, guest = make_xen()
        table, ref = self.grant(xen, dom0, guest)
        xen.grant_unmap(guest, ref, dom0)
        with pytest.raises(GrantDoubleUnmap):
            xen.grant_unmap(guest, ref, dom0)

    def test_double_unmap_is_a_grant_error(self):
        # callers catching GrantError keep working
        m, xen, dom0, guest = make_xen()
        table, ref = self.grant(xen, dom0, guest)
        xen.grant_unmap(guest, ref, dom0)
        with pytest.raises(GrantError):
            xen.grant_unmap(guest, ref, dom0)

    def test_rejected_unmap_charges_nothing(self):
        m, xen, dom0, guest = make_xen()
        table, ref = self.grant(xen, dom0, guest)
        xen.grant_unmap(guest, ref, dom0)
        before = m.account.cycles["Xen"]
        with pytest.raises(GrantDoubleUnmap):
            xen.grant_unmap(guest, ref, dom0)
        assert m.account.cycles["Xen"] == before

    def test_active_maps_stays_exact(self):
        m, xen, dom0, guest = make_xen()
        table, ref = self.grant(xen, dom0, guest)
        assert table.active_maps == 1
        xen.grant_unmap(guest, ref, dom0)
        assert table.active_maps == 0
        with pytest.raises(GrantDoubleUnmap):
            xen.grant_unmap(guest, ref, dom0)
        assert table.active_maps == 0
        # remap after a clean unmap still works
        xen.grant_map(guest, ref, dom0)
        assert table.active_maps == 1
