#!/usr/bin/env python3
"""A guided tour of the binary rewriter: what SVM instrumentation looks
like on real driver code.

Shows a slice of the e1000 transmit routine before and after rewriting,
the figure-4 fast path, a string-instruction chunk loop, the indirect-call
translation, and the rewrite statistics for the whole driver.

Run:  python examples/rewriting_tour.py
"""

from repro.core import rewrite_driver
from repro.drivers import build_e1000_program
from repro.isa import assemble


def show(title, program, start, count):
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))
    by_index = {}
    for label, idx in program.labels.items():
        by_index.setdefault(idx, []).append(label)
    for i in range(start, min(start + count, len(program.instructions))):
        for label in by_index.get(i, ()):
            print(f"{label}:")
        print(f"    {program.instructions[i].format()}")


def main():
    # a minimal kernel showing each rewrite category
    demo = assemble("""
.globl demo
.comm stats, 8
demo:
    pushl %esi
    movl 12(%ebx), %eax          # heap load      -> SVM fast path
    movl %eax, 16(%ebx)          # heap store     -> SVM fast path
    movl 8(%esp), %ecx           # stack-relative -> untouched
    leal 20(%ebx), %edx          # address math   -> untouched
    incl stats                   # global data    -> SVM fast path
    rep movsl                    # string op      -> page-chunk loop
    call *%eax                   # indirect call  -> stlb_call translate
    popl %esi
    ret
""", name="demo")
    rewritten, stats = rewrite_driver(demo)
    show("original demo kernel", demo, 0, len(demo.instructions))
    show("rewritten (SVM-instrumented)", rewritten, 0,
         len(rewritten.instructions))
    print(f"\n{stats.input_instructions} -> {stats.output_instructions} "
          f"instructions; {stats.memory_rewritten} memory refs, "
          f"{stats.string_rewritten} string ops, "
          f"{stats.indirect_rewritten} indirect transfers rewritten; "
          f"{stats.spills} spills, {stats.flag_saves} flag saves")

    # the real driver
    program = build_e1000_program()
    rewritten, stats = rewrite_driver(program)
    print("\n=== the whole e1000 driver " + "=" * 35)
    print(f"input instructions : {stats.input_instructions}")
    print(f"output instructions: {stats.output_instructions} "
          f"({stats.expansion_factor:.2f}x)")
    print(f"memory fraction    : {stats.memory_fraction:.1%} "
          "(paper measured ~25% for network drivers)")
    print(f"spills             : {stats.spills}")
    print(f"flag saves         : {stats.flag_saves}")

    start = program.labels["e1000_xmit_frame"]
    show("e1000_xmit_frame, original (first 14 instructions)",
         program, start, 14)
    start = rewritten.labels["e1000_xmit_frame"]
    show("e1000_xmit_frame, rewritten (first 26 instructions)",
         rewritten, start, 26)


if __name__ == "__main__":
    main()
