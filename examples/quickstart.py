#!/usr/bin/env python3
"""Quickstart: bring up the full TwinDrivers stack and push packets.

Builds the paper's ``domU-twin`` configuration — a Xen-like hypervisor, a
dom0 running the VM driver instance, a guest with a paravirtual NIC, and
the rewritten e1000 running *in the hypervisor* — then transmits and
receives traffic and prints what happened where.

Run:  python examples/quickstart.py
"""

from repro.configs import build
from repro.metrics import CATEGORIES


def main():
    print("building the domU-twin configuration (1 NIC) ...")
    system = build("domU-twin", n_nics=1)
    twin = system.twin
    stats = twin.rewrite_stats
    print(f"  driver rewritten: {stats.input_instructions} -> "
          f"{stats.output_instructions} instructions "
          f"({stats.memory_rewritten} memory refs, "
          f"{stats.string_rewritten} string ops, "
          f"{stats.indirect_rewritten} indirect calls instrumented)")
    print(f"  VM instance at   {twin.vm_module.code_base:#010x} (dom0)")
    print(f"  hyp instance at  {twin.hyp_driver.loaded.base:#010x} "
          f"(code offset {twin.hyp_driver.code_offset:+#x})")

    # ---- transmit: guest -> hypervisor driver -> NIC -> wire -------------
    print("\ntransmitting 100 frames from the guest ...")
    snap = system.snapshot()
    sent = system.transmit_packets(100)
    delta = system.delta_since(snap)
    print(f"  {sent} frames accepted, {system.packets_on_wire} on the wire")
    print("  cycles/packet by category: "
          + ", ".join(f"{c}={delta[c] / sent:.0f}" for c in CATEGORIES))

    # ---- receive: wire -> hypervisor driver -> demux -> guest ------------
    print("\ninjecting 100 frames from the wire ...")
    snap = system.snapshot()
    got = system.receive_packets(100)
    delta = system.delta_since(snap)
    print(f"  {got} frames accepted, {system.packets_delivered} delivered "
          "to the guest")
    print("  cycles/packet by category: "
          + ", ".join(f"{c}={delta[c] / got:.0f}" for c in CATEGORIES))

    # ---- the mechanisms at work ------------------------------------------
    svm = twin.svm
    print("\nSVM state:")
    print(f"  stlb misses={svm.misses} collisions={svm.collisions} "
          f"dom0 pages mapped into the hypervisor={len(svm.mappings)}")
    print(f"  buffer pool: {twin.hyp_support.pool.available}/"
          f"{twin.hyp_support.pool.capacity} free")
    rt = twin.hyp_runtime
    print(f"  stlb_call cache: {rt.call_xlate_hits} hits / "
          f"{rt.call_xlate_misses} misses")
    print(f"  upcalls made: {twin.upcalls.upcalls} "
          "(zero: the whole fast path lives in the hypervisor)")

    # ---- management still runs in the VM instance (dom0) ------------------
    ndev = twin.netdev_order[0]
    twin.vm_call("e1000_get_stats", [ndev])
    link = twin.vm_call("e1000_ethtool_get_link", [ndev])
    print("\nmanagement via the VM instance in dom0:")
    print(f"  ethtool get_link -> {link}")
    twin.dom0_kernel.advance_jiffies(10)
    fired = twin.run_vm_maintenance()
    print(f"  watchdog timers fired: {fired}")


if __name__ == "__main__":
    main()
