#!/usr/bin/env python3
"""Render the paper's figures 5-8 and 10 as ASCII charts from live runs.

Run:  python examples/render_figures.py [--packets N]
"""

import argparse

from repro.metrics import CATEGORIES
from repro.workloads import (
    figure10_upcall_sweep,
    profile_config,
    run_netperf,
)

WIDTH = 46


def bar(value, peak, width=WIDTH, char="#"):
    n = int(round(value / peak * width)) if peak else 0
    return char * n


def render_throughput(title, direction, paper, packets):
    print(f"\n{title}")
    results = {name: run_netperf(name, direction, packets=packets)
               for name in paper}
    peak = max(max(r.throughput_mbps for r in results.values()),
               max(paper.values()))
    for name in ("domU", "domU-twin", "dom0", "linux"):
        r = results[name]
        print(f"  {name:10s} |{bar(r.throughput_mbps, peak):<{WIDTH}}| "
              f"{r.throughput_mbps:5.0f} (paper {paper[name]})")


def render_profile(title, direction, packets):
    print(f"\n{title} (stacked: {' '.join(CATEGORIES)})")
    profiles = {name: profile_config(name, direction, packets=packets)
                for name in ("linux", "dom0", "domU-twin", "domU")}
    peak = max(p.total_per_packet for p in profiles.values())
    glyphs = dict(zip(CATEGORIES, "0UXe"))
    for name in ("linux", "dom0", "domU-twin", "domU"):
        pp = profiles[name].per_packet
        row = ""
        for category in CATEGORIES:
            row += glyphs[category] * int(round(pp[category] / peak * WIDTH))
        print(f"  {name:10s} |{row:<{WIDTH}}| "
              f"{profiles[name].total_per_packet:6.0f} cyc/pkt")


def render_upcalls(packets):
    print("\nFigure 10: transmit throughput vs upcalls per invocation")
    sweep = figure10_upcall_sweep(max_upcalls=9, packets=packets)
    peak = sweep[0].throughput_mbps
    for point in sweep:
        print(f"  {point.n_upcalls} upcalls |"
              f"{bar(point.throughput_mbps, peak):<{WIDTH}}| "
              f"{point.throughput_mbps:5.0f} Mb/s")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--packets", type=int, default=192)
    args = parser.parse_args()
    render_throughput(
        "Figure 5: transmit throughput (Mb/s)", "tx",
        {"domU": 1619, "domU-twin": 3902, "dom0": 4683, "linux": 4690},
        args.packets)
    render_throughput(
        "Figure 6: receive throughput (Mb/s)", "rx",
        {"domU": 928, "domU-twin": 2022, "dom0": 2839, "linux": 3010},
        args.packets)
    render_profile("Figure 7: transmit cycles/packet", "tx", args.packets)
    render_profile("Figure 8: receive cycles/packet", "rx", args.packets)
    render_upcalls(args.packets)


if __name__ == "__main__":
    main()
