#!/usr/bin/env python3
"""The web-server workload (figure 9): knot + SPECweb99 + httperf.

Sweeps offered connection rates against all four configurations, prints
the throughput curves as an ASCII chart, and validates the analytic
capacity model against whole request exchanges pushed through the real
simulated stack.

Run:  python examples/webserver_workload.py
"""

from repro.workloads import FileSet, figure9_curves, simulate_requests

PAPER_PEAKS = {"linux": 855, "dom0": 712, "domU-twin": 572, "domU": 269}
RATES = tuple(range(1000, 20001, 1000))
WIDTH = 52


def ascii_chart(curves):
    peak = max(c.peak_mbps for c in curves)
    marks = {"linux": "L", "dom0": "0", "domU-twin": "T", "domU": "U"}
    print(f"\n  throughput (Mb/s) vs offered rate "
          f"(L=linux 0=dom0 T=twin U=domU)")
    for i, rate in enumerate(RATES):
        row = [" "] * (WIDTH + 1)
        for curve in curves:
            pos = int(curve.points[i].throughput_mbps / peak * WIDTH)
            row[pos] = marks[curve.config]
        print(f"  {rate:6d} |" + "".join(row))
    print("         +" + "-" * WIDTH)
    print(f"         0{'':{WIDTH - 10}}{peak:.0f} Mb/s")


def main():
    fileset = FileSet()
    print("SPECweb99-like static file set:")
    print(f"  {len(fileset.files)} files in one directory, "
          f"mean response {fileset.mean_size / 1024:.1f} KiB, "
          f"total {fileset.total_bytes / 1e6:.1f} MB (fits in memory)")

    print("\nmeasuring per-packet costs and sweeping request rates ...")
    curves = figure9_curves(rates=RATES)

    print(f"\n  {'config':12s} {'capacity':>10} {'peak':>9}  {'paper':>7}")
    for curve in curves:
        print(f"  {curve.config:12s} "
              f"{curve.capacity.requests_per_second:8.0f}r/s "
              f"{curve.peak_mbps:7.0f}Mb  "
              f"{PAPER_PEAKS[curve.config]:5d}Mb")
    by_name = {c.config: c for c in curves}
    print(f"  -> twin vs domU peak: "
          f"{by_name['domU-twin'].peak_mbps / by_name['domU'].peak_mbps:.2f}x"
          " (paper: 'more than a factor of 2')")

    ascii_chart(curves)

    print("\nvalidating the model: 20 whole request exchanges through the "
          "real stack (domU-twin):")
    sim = simulate_requests("domU-twin", n_requests=20)
    model = by_name["domU-twin"].capacity
    print(f"  simulated : {sim['cycles_per_request']:9.0f} cycles/request")
    print(f"  model     : {model.cycles_per_request:9.0f} cycles/request "
          "(model adds app-server work the packet-sim omits)")


if __name__ == "__main__":
    main()
