#!/usr/bin/env python3
"""Generality: twin a second, structurally different driver.

The e1000 is a scatter/gather descriptor-ring design; the RTL8139 is a
copying, fixed-slot design with a contiguous receive ring. The same
rewriter, loader, SVM and upcall machinery twins both — and dynamic
tracing discovers a *different* fast-path support set for each.

Run:  python examples/second_driver.py
"""

from repro.core import ParavirtNetDevice, TwinDriverManager
from repro.drivers import E1000_SPEC, RTL8139_SPEC
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor


def bring_up(spec, model):
    machine = Machine()
    xen = Hypervisor(machine)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    dom0_kernel = Kernel(machine, dom0, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, dom0_kernel, driver=spec)
    nic = machine.add_nic(model=model)
    nic.interrupt_batch = 8
    twin.attach_nic(nic)
    guest = Kernel(machine, xen.create_domain("guest"), costs=xen.costs,
                   paravirtual=True)
    device = ParavirtNetDevice(twin, guest, mac=b"\x00\x16\x3e\xdd\x00\x01")
    xen.switch_to(device.kernel.domain)
    return machine, xen, twin, device, nic


def exercise(spec, model):
    machine, xen, twin, device, nic = bring_up(spec, model)
    stats = twin.rewrite_stats
    print(f"\n=== {spec.name} "
          f"(scatter/gather: {spec.scatter_gather}) ===")
    print(f"  rewrite: {stats.input_instructions} -> "
          f"{stats.output_instructions} instructions, "
          f"{stats.memory_rewritten} memory refs, "
          f"{stats.string_rewritten} string ops, "
          f"{stats.indirect_rewritten} indirect calls")
    machine.wire.keep_payloads = True
    payload = bytes(range(250)) * 5
    device.keep_rx_payloads = True
    for _ in range(32):
        assert device.transmit(len(payload), payload=payload)
    frame = device.mac + b"\x00" * 6 + b"\x08\x00" + payload
    for _ in range(32):
        assert machine.wire.inject(nic, frame)
    nic.flush_interrupts()
    assert machine.wire.transmitted[0][14:] == payload
    assert device.rx_payloads[0] == payload
    print(f"  32 tx + 32 rx, payloads intact; upcalls: "
          f"{twin.upcalls.upcalls}; stlb misses: {twin.svm.misses}")
    fast_path = sorted(twin.hyp_support.calls)
    print(f"  fast-path support set ({len(fast_path)} routines): "
          f"{', '.join(fast_path)}")


def main():
    exercise(E1000_SPEC, "e1000")
    exercise(RTL8139_SPEC, "rtl8139")
    print("\nSame pipeline, two very different drivers — the fast-path "
          "support set is discovered per driver by tracing, exactly the "
          "paper's Table-1 methodology.")


if __name__ == "__main__":
    main()
