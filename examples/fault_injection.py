#!/usr/bin/env python3
"""Safety demonstration (paper §4.5): a buggy driver cannot take down the
hypervisor.

Injects a classic wild-write bug into the e1000 transmit path, runs it
as the TwinDrivers hypervisor instance, and shows that:

* SVM detects the access the moment the driver touches memory outside
  dom0's address space;
* the driver is aborted, not the hypervisor — other domains, the event
  machinery, and the VM instance in dom0 keep running;
* an infinite-loop bug is likewise contained (the §4.5.2 watchdog model);
* with the recovery subsystem armed (the default), a *transient* fault
  quarantines the instance, traffic degrades to the paravirtualized dom0
  path, and the driver is re-verified and reloaded — the guest never
  sees the fault; a crash-looping driver opens the circuit breaker.

The recovery runs emit a ``repro-bench-result/v1`` JSON with the
``recovery.*`` counters (``benchmarks/results/fault_recovery.json``) so
CI can assert the end-to-end survival property.

Run:  python examples/fault_injection.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.common import write_json_result          # noqa: E402
from repro.core import (                                  # noqa: E402
    DriverAborted,
    ParavirtNetDevice,
    RecoveryPolicy,
    TwinDriverManager,
)
from repro.drivers.e1000 import DRIVER_CONSTANTS, E1000_ASM  # noqa: E402
from repro.isa import assemble                            # noqa: E402
from repro.machine import Machine                         # noqa: E402
from repro.osmodel import Kernel                          # noqa: E402
from repro.xen import Hypervisor                          # noqa: E402

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def build_buggy_twin(sabotage, recovery=False, policy=None):
    # the persistent-bug demos run with recovery off: the same buggy
    # binary is the dom0 fallback too, so only the raw §4.5 abort
    # semantics are meaningful for them
    machine = Machine()
    xen = Hypervisor(machine)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    dom0_kernel = Kernel(machine, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    guest_kernel = Kernel(machine, guest, costs=xen.costs, paravirtual=True)
    program = assemble(sabotage(E1000_ASM), constants=DRIVER_CONSTANTS,
                       name="e1000-buggy")
    twin = TwinDriverManager(xen, dom0_kernel, program=program,
                             recovery=recovery, recovery_policy=policy)
    twin.attach_nic(machine.add_nic())
    device = ParavirtNetDevice(twin, guest_kernel, mac=GUEST_MAC)
    xen.switch_to(guest)
    return machine, xen, twin, device


def wild_write(asm):
    """The driver scribbles on hypervisor data during transmit."""
    return asm.replace(
        "    incl e1000_xmit_calls",
        "    movl $0xF0300040, %eax     # hypervisor data!\n"
        "    movl $0x41414141, (%eax)\n"
        "    incl e1000_xmit_calls", 1)


def infinite_loop(asm):
    """The driver spins forever holding the CPU (§4.5.2)."""
    return asm.replace(
        "    incl e1000_xmit_calls",
        ".Lspin:\n"
        "    jmp .Lspin\n"
        "    incl e1000_xmit_calls", 1)


def main():
    print("=== bug 1: wild write into hypervisor memory ===")
    machine, xen, twin, device = build_buggy_twin(wild_write)
    # tracing on: when the driver dies we can print the flight recorder
    machine.obs.enable_tracing()
    try:
        device.transmit(800)
    except DriverAborted as exc:
        print(f"  driver aborted: {exc.cause}")
        print("\n  trace-ring tail (the flight recorder at the crash):")
        from repro.obs import render_tail
        tail = [ev.to_dict() for ev in machine.obs.tracer.tail(12)]
        print("    " + render_tail(tail, n=12).replace("\n", "\n    "))
    machine.obs.disable_tracing()
    print(f"  SVM protection faults: {twin.svm.protection_faults}")
    print(f"  hypervisor alive? switching domains and calling the VM "
          "instance in dom0 ...")
    link = twin.vm_call("e1000_ethtool_get_link", [twin.netdev_order[0]])
    print(f"  ethtool via VM instance still works (link={link})")
    try:
        device.transmit(800)
    except DriverAborted:
        print("  further hypervisor-driver invocations are refused: OK")

    print("\n=== bug 2: infinite loop in the driver ===")
    machine, xen, twin, device = build_buggy_twin(infinite_loop)
    machine.cpu.max_steps_per_call = 100_000      # the watchdog budget
    try:
        device.transmit(800)
    except DriverAborted as exc:
        print(f"  driver aborted by the execution budget: {exc.cause}")
    print(f"  hypervisor survived; domain switches still work "
          f"(current={xen.current.name})")

    print("\n=== bug 3: stack smash via a computed index (§4.5.1) ===")

    def stack_smash(asm):
        return asm.replace(
            "    incl e1000_xmit_calls",
            "    movl $-100000, %ecx\n"
            "    movl $0x41414141, -16(%esp,%ecx,4)\n"
            "    incl e1000_xmit_calls", 1)

    machine = Machine()
    xen = Hypervisor(machine)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    dom0_kernel = Kernel(machine, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    guest_kernel = Kernel(machine, guest, costs=xen.costs, paravirtual=True)
    program = assemble(stack_smash(E1000_ASM), constants=DRIVER_CONSTANTS,
                       name="e1000-stack-smash")
    twin = TwinDriverManager(xen, dom0_kernel, program=program,
                             protect_stack=True, recovery=False)
    twin.attach_nic(machine.add_nic())
    device = ParavirtNetDevice(twin, guest_kernel, mac=GUEST_MAC)
    xen.switch_to(guest)
    try:
        device.transmit(800)
    except DriverAborted as exc:
        print(f"  bounds check caught it: {exc.cause}")
    print(f"  ({twin.rewrite_stats.stack_verified} constant-offset stack "
          f"accesses were verified statically; "
          f"{twin.rewrite_stats.stack_checked} variable-offset accesses "
          "carry runtime checks)")

    print("\n=== bug 4: rogue DMA address (blocked by the IOMMU, §4.5) ===")
    from repro.configs import build
    system = build("domU-twin", n_nics=1, iommu=True)
    nic = system.nics[0]
    system.transmit_packets(8)
    print(f"  normal traffic with IOMMU on: {system.packets_on_wire} "
          f"frames, {system.machine.iommu.checks} DMA checks, "
          f"{nic.stats.dma_faults} faults")
    # forge a descriptor pointing at an unmapped frame and kick the device
    from repro.machine.nic import DESC_EOP, REG_TDBAL, REG_TDT, REG_TDH
    secret = system.machine.phys.allocate_frame() << 12
    system.machine.phys.write_bytes(secret, b"hypervisor secrets")
    ring = nic.regs[REG_TDBAL]
    head = nic.regs[REG_TDH]
    desc = ring + head * 16
    system.machine.phys.write_u32(desc + 0, secret)
    system.machine.phys.write_u32(desc + 8, 18)
    system.machine.phys.write_u32(desc + 12, DESC_EOP)
    system.machine.wire.keep_payloads = True
    nic.mmio_write(REG_TDT, 4, (head + 1) % 64)
    leaked = any(b"secrets" in p for p in system.machine.wire.transmitted)
    print(f"  rogue descriptor: dma_faults={nic.stats.dma_faults}, "
          f"secret leaked to the wire: {leaked}")

    print("\n=== bug 5: a buggy rewriter misses a store "
          "(caught before load) ===")
    # The previous bugs were caught at *runtime*. The static verifier
    # (repro.analysis) catches instrumentation gaps at *load time*: here the
    # "rewriter" leaves one raw store uninstrumented and the hypervisor
    # loader refuses the binary outright.
    import dataclasses
    import repro.core.twin as twin_mod
    from repro.analysis import VerificationError, build_negative_corpus, \
        verify_program
    from repro.isa import Instruction, Mem, Reg

    real_rewrite = twin_mod.rewrite_driver

    def buggy_rewrite(program, **kwargs):
        rewritten, stats = real_rewrite(program, **kwargs)
        missed = Instruction("mov", (Reg("eax"), Mem(base="ebx")))
        return dataclasses.replace(
            rewritten,
            instructions=list(rewritten.instructions)
            + [missed, Instruction("ret", ())],
        ), stats

    twin_mod.rewrite_driver = buggy_rewrite
    try:
        build_buggy_twin(lambda asm: asm)
    except VerificationError as exc:
        print(f"  loader refused the binary: {exc}")
    finally:
        twin_mod.rewrite_driver = real_rewrite

    print("  the negative corpus, one broken binary per violation class:")
    for entry in build_negative_corpus():
        report = verify_program(entry.program,
                                protect_stack=entry.protect_stack)
        finding = report.errors[0]
        print(f"    {entry.name:>18}: rejected by [{finding.passname}] "
              f"@{finding.index}")

    print("\n=== bug 6: a transient fault — quarantine, degrade, "
          "reload ===")
    # A healthy driver hit by a one-shot fault (bit flip, transient DMA
    # corruption, ...): with recovery armed the guest never notices.
    machine, xen, twin, device = build_buggy_twin(lambda asm: asm,
                                                  recovery=True)
    machine.obs.enable_tracing()
    for _ in range(10):
        assert device.transmit(800)
    twin.svm.inject_fault()
    survived = all(device.transmit(800) for _ in range(30))
    recovery = twin.recovery
    snap = recovery.counters_snapshot()
    print(f"  injected SvmProtectionFault mid-stream: "
          f"40/40 transmits accepted: {survived}")
    print(f"  state machine: quarantine={snap['quarantine']} -> "
          f"degraded_tx={snap['degraded_tx']} "
          f"degraded_rx={snap['degraded_rx']} -> "
          f"reload={snap['reload_success']} (state={recovery.state})")
    print(f"  frames on the wire: {machine.wire.tx_count}, flight "
          f"records kept: {len(recovery.flight_records)}")
    spans = machine.obs.tracer.spans("recovery")
    print(f"  recovery spans in the trace ring: {len(spans)} "
          f"(cause={spans[0].args.get('cause')})")
    machine.obs.disable_tracing()
    recovered_ok = (survived and recovery.state == "active"
                    and snap["recovered"] >= 1)
    recovery_obs = {f"recovery.{k}": v for k, v in snap.items()}

    print("\n=== bug 7: a crash-looping driver opens the breaker ===")
    policy = RecoveryPolicy(backoff_initial=1, breaker_threshold=3,
                            stable_invocations=1000)
    machine, xen, twin, device = build_buggy_twin(lambda asm: asm,
                                                  recovery=True,
                                                  policy=policy)
    for _ in range(3):
        assert device.transmit(800)
    relapses = 0
    for _ in range(100):
        if twin.recovery.broken:
            break
        if twin.recovery.state == "active":
            twin.svm.inject_fault()      # fault again right after reload
            relapses += 1
        assert device.transmit(800)
    snap2 = twin.recovery.counters_snapshot()
    print(f"  {relapses} relapses -> breaker open: {twin.recovery.broken} "
          f"(reload attempts: {snap2['reload_attempt']})")
    before = machine.wire.tx_count
    for _ in range(10):
        assert device.transmit(800)
    print(f"  traffic still flows on the permanent dom0 path: "
          f"{machine.wire.tx_count - before}/10 frames")

    path = write_json_result(
        "fault_recovery",
        metrics={
            "transmits_survived": int(survived),
            "recovered": snap["recovered"],
            "breaker_opened": snap2["breaker_open"],
            "degraded_frames": snap2["degraded_tx"],
        },
        config={"workload": "fault-injection", "driver": "e1000",
                "breaker_threshold": policy.breaker_threshold},
        obs=recovery_obs,
    )
    print(f"  bench result written: {os.path.relpath(path)}")

    print("\n=== control: the unmodified driver ===")
    machine, xen, twin, device = build_buggy_twin(lambda asm: asm)
    for _ in range(25):
        assert device.transmit(800)
    print(f"  25 frames transmitted, driver healthy "
          f"(aborted={twin.aborted})")
    if not recovered_ok:
        raise SystemExit("recovery demo failed")


if __name__ == "__main__":
    main()
