#!/usr/bin/env python3
"""The paper's netperf experiment: all four configurations side by side.

Reproduces figures 5 and 6 (and prints the per-packet profiles behind
them — figures 7 and 8) with the paper's numbers for comparison.

Run:  python examples/netperf_comparison.py [--packets N]
"""

import argparse

from repro.metrics import format_profile_table
from repro.workloads import (
    figure7_profiles,
    figure8_profiles,
    run_netperf,
    summarize,
)

PAPER = {
    ("domU", "tx"): 1619, ("domU-twin", "tx"): 3902,
    ("dom0", "tx"): 4683, ("linux", "tx"): 4690,
    ("domU", "rx"): 928, ("domU-twin", "rx"): 2022,
    ("dom0", "rx"): 2839, ("linux", "rx"): 3010,
}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--packets", type=int, default=256,
                        help="steady-state packets to measure per run")
    args = parser.parse_args()

    for direction, figure in (("tx", "Figure 5 (transmit)"),
                              ("rx", "Figure 6 (receive)")):
        print(f"\n{figure}: aggregate throughput over 5 GigE NICs")
        print(f"  {'config':12s} {'measured':>9}  {'paper':>7}  "
              f"{'cpu':>6}  {'cpu-scaled':>10}")
        results = []
        for name in ("domU", "domU-twin", "dom0", "linux"):
            r = run_netperf(name, direction, packets=args.packets)
            results.append(r)
            print(f"  {name:12s} {r.throughput_mbps:7.0f}Mb  "
                  f"{PAPER[(name, direction)]:5d}Mb  "
                  f"{r.cpu_utilization * 100:5.1f}%  "
                  f"{r.cpu_scaled_mbps:8.0f}Mb")
        headline = summarize(results)
        print(f"  -> twin vs domU (CPU-scaled): "
              f"{headline['twin_vs_domU_cpu_scaled']:.2f}x "
              f"(paper: {'2.41x' if direction == 'tx' else '2.17x'})")
        print(f"  -> twin as fraction of native Linux: "
              f"{headline['twin_fraction_of_linux_cpu_scaled']:.0%} "
              f"(paper: {'64%' if direction == 'tx' else '67%'})")

    print("\nPer-packet profiles behind those numbers:")
    print(format_profile_table(figure7_profiles(packets=args.packets),
                               "Figure 7: transmit cycles/packet"))
    print(format_profile_table(figure8_profiles(packets=args.packets),
                               "Figure 8: receive cycles/packet"))
    print("paper totals, tx: linux ~7130, dom0 ~8310, twin 9972, "
          "domU 21159")
    print("paper totals, rx: linux 11166, dom0 14308, twin 20089, "
          "domU 35905")


if __name__ == "__main__":
    main()
